(* Code-generation tests: each emitter produces only its vendor's
   software-visible syntax, and OpenQASM round-trips through the subset
   parser with the unitary preserved. *)

module G = Ir.Gate
module Circuit = Ir.Circuit
module Mat = Ir.Matrices
module M = Mathkit.Matrix
module Machines = Device.Machines
module Pipeline = Triq.Pipeline

let bv4 = (Bench_kit.Programs.bv 4).Bench_kit.Programs.circuit

let compile machine = Pipeline.to_compiled (Pipeline.compile_level machine bv4 ~level:Pipeline.OneQOptCN)

let contains hay needle =
  let h = String.length hay and n = String.length needle in
  let rec scan i = i + n <= h && (String.sub hay i n = needle || scan (i + 1)) in
  n = 0 || scan 0

(* ---------- OpenQASM ---------- *)

let test_qasm_structure () =
  let text = Backend.Qasm_emit.emit (compile Machines.ibmq5) in
  Alcotest.(check bool) "version header" true (contains text "OPENQASM 2.0;");
  Alcotest.(check bool) "include" true (contains text "qelib1.inc");
  Alcotest.(check bool) "qreg" true (contains text "qreg q[5];");
  Alcotest.(check bool) "creg" true (contains text "creg c[3];");
  Alcotest.(check bool) "has cx" true (contains text "cx q[");
  Alcotest.(check bool) "has measure" true (contains text "-> c[")

let test_qasm_rejects_foreign_gates () =
  let c = Circuit.create 2 [ G.One (G.H, 0) ] in
  Alcotest.(check bool) "H not emittable" true
    (try ignore (Backend.Qasm_emit.emit_circuit ~n_qubits:2 ~name:"t" c); false
     with Invalid_argument _ -> true)

let test_qasm_rejects_wrong_vendor () =
  Alcotest.(check bool) "rigetti refused" true
    (try ignore (Backend.Qasm_emit.emit (compile Machines.agave)); false
     with Invalid_argument _ -> true)

let test_qasm_roundtrip () =
  let compiled = compile Machines.ibmq5 in
  let text = Backend.Qasm_emit.emit compiled in
  let parsed = Backend.Qasm_parse.parse text in
  Alcotest.(check int) "qubits" 5 parsed.Backend.Qasm_parse.n_qubits;
  (* Same gate sequence after the round trip. *)
  Alcotest.(check bool) "circuits equal" true
    (Circuit.equal compiled.Triq.Compiled.hardware parsed.Backend.Qasm_parse.circuit)

let test_qasm_roundtrip_unitary () =
  let compiled = compile Machines.ibmq5 in
  let text = Backend.Qasm_emit.emit compiled in
  let parsed = Backend.Qasm_parse.parse text in
  let restrict c =
    let body = Circuit.body c in
    fst (Circuit.compact body)
  in
  let u1 = Mat.circuit_unitary (restrict compiled.Triq.Compiled.hardware) in
  let u2 = Mat.circuit_unitary (restrict parsed.Backend.Qasm_parse.circuit) in
  Alcotest.(check bool) "unitary preserved" true (M.proportional ~eps:1e-9 u1 u2)

let test_qasm_parse_errors () =
  let raises s =
    try ignore (Backend.Qasm_parse.parse s); false with Backend.Qasm_parse.Error _ -> true
  in
  Alcotest.(check bool) "no qreg" true (raises "OPENQASM 2.0;\ncx q[0],q[1];");
  Alcotest.(check bool) "junk" true
    (raises "OPENQASM 2.0;\nqreg q[2];\nfrobnicate q[0];");
  Alcotest.(check bool) "bad angle" true
    (raises "OPENQASM 2.0;\nqreg q[2];\nu1(nonsense) q[0];")

let test_qasm_parse_readout_map () =
  let text =
    "OPENQASM 2.0;\nqreg q[3];\ncreg c[2];\nmeasure q[2] -> c[0];\nmeasure q[0] -> c[1];\n"
  in
  let parsed = Backend.Qasm_parse.parse text in
  Alcotest.(check (list (pair int int))) "readout" [ (0, 2); (1, 0) ]
    parsed.Backend.Qasm_parse.readout

(* ---------- Quil ---------- *)

let test_quil_structure () =
  let text = Backend.Quil_emit.emit (compile Machines.agave) in
  Alcotest.(check bool) "declare ro" true (contains text "DECLARE ro BIT[3]");
  Alcotest.(check bool) "has cz" true (contains text "CZ ");
  Alcotest.(check bool) "has rz" true (contains text "RZ(");
  Alcotest.(check bool) "has rx" true (contains text "RX(");
  Alcotest.(check bool) "has measure" true (contains text "MEASURE ")

let test_quil_rejects_wrong_vendor () =
  Alcotest.(check bool) "ibm refused" true
    (try ignore (Backend.Quil_emit.emit (compile Machines.ibmq5)); false
     with Invalid_argument _ -> true)

let test_quil_no_foreign_gates () =
  let text = Backend.Quil_emit.emit (compile Machines.aspen1) in
  Alcotest.(check bool) "no cnot" false (contains text "CNOT");
  Alcotest.(check bool) "no hadamard" false (contains text "H ")

let test_quil_roundtrip () =
  let compiled = compile Machines.agave in
  let text = Backend.Quil_emit.emit compiled in
  let parsed = Backend.Quil_parse.parse text in
  (* The parsed circuit spans only the mentioned qubits; compare the gate
     lists directly. *)
  Alcotest.(check bool) "gate lists equal" true
    (List.for_all2 G.equal compiled.Triq.Compiled.hardware.Circuit.gates
       parsed.Backend.Quil_parse.circuit.Circuit.gates)

let test_quil_roundtrip_unitary () =
  let compiled = compile Machines.aspen1 in
  let text = Backend.Quil_emit.emit compiled in
  let parsed = Backend.Quil_parse.parse text in
  let restrict c = fst (Circuit.compact (Circuit.body c)) in
  let u1 = Mat.circuit_unitary (restrict compiled.Triq.Compiled.hardware) in
  let u2 = Mat.circuit_unitary (restrict parsed.Backend.Quil_parse.circuit) in
  Alcotest.(check bool) "unitary preserved" true (M.proportional ~eps:1e-9 u1 u2)

let test_quil_parse_errors () =
  let raises s =
    try ignore (Backend.Quil_parse.parse s); false with Backend.Quil_parse.Error _ -> true
  in
  Alcotest.(check bool) "empty" true (raises "# nothing\n");
  Alcotest.(check bool) "junk" true (raises "FROB 1 2\n");
  Alcotest.(check bool) "bad angle" true (raises "RZ(xyz) 0\n")

(* ---------- UMD TI ---------- *)

let test_ti_structure () =
  let text = Backend.Ti_emit.emit (compile Machines.umdti) in
  Alcotest.(check bool) "has xx" true (contains text "XX  ");
  Alcotest.(check bool) "has rotation" true (contains text "R   ");
  Alcotest.(check bool) "has measurement" true (contains text "MEAS ")

let test_ti_rejects_wrong_vendor () =
  Alcotest.(check bool) "ibm refused" true
    (try ignore (Backend.Ti_emit.emit (compile Machines.ibmq5)); false
     with Invalid_argument _ -> true)

let test_ti_roundtrip () =
  let compiled = compile Machines.umdti in
  let text = Backend.Ti_emit.emit compiled in
  let parsed = Backend.Ti_parse.parse text in
  Alcotest.(check bool) "gate lists equal" true
    (List.for_all2 G.equal compiled.Triq.Compiled.hardware.Circuit.gates
       parsed.Backend.Ti_parse.circuit.Circuit.gates);
  Alcotest.(check int) "three readouts" 3
    (List.length parsed.Backend.Ti_parse.measured)

let test_ti_parse_errors () =
  let raises s =
    try ignore (Backend.Ti_parse.parse s); false with Backend.Ti_parse.Error _ -> true
  in
  Alcotest.(check bool) "empty" true (raises "; nothing\n");
  Alcotest.(check bool) "junk" true (raises "WOBBLE 0\n")

(* ---------- Whitespace dialects & numeric formats ---------- *)

(* Table-driven: each row is (label, source text, expected gates). The
   sources exercise CRLF line endings, trailing whitespace, tab
   separators, and scientific-notation angles — all of which real vendor
   toolchains produce. *)

let check_gates label expected (actual : Circuit.t) =
  Alcotest.(check int)
    (label ^ ": gate count") (List.length expected)
    (List.length actual.Circuit.gates);
  List.iteri
    (fun i (e, a) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: gate %d (%s vs %s)" label i (G.to_string e)
           (G.to_string a))
        true (G.equal e a))
    (List.combine expected actual.Circuit.gates)

let test_qasm_whitespace_dialects () =
  let table =
    [
      ( "crlf",
        "OPENQASM 2.0;\r\nqreg q[2];\r\ncx q[0],q[1];\r\n",
        [ G.Two (G.Cnot, 0, 1) ] );
      ( "trailing blanks",
        "OPENQASM 2.0;\nqreg q[2];  \nu1(0.5) q[1];   \n",
        [ G.One (G.U1 0.5, 1) ] );
      ( "tab separators",
        "OPENQASM 2.0;\nqreg\tq[2];\ncx\tq[0],q[1];\nmeasure\tq[0]\t->\tc[0];\n",
        [ G.Two (G.Cnot, 0, 1); G.Measure 0 ] );
      ( "scientific notation",
        "OPENQASM 2.0;\nqreg q[1];\nu1(1e-3) q[0];\nu2(2.5e-2,-1E-4) q[0];\n",
        [ G.One (G.U1 1e-3, 0); G.One (G.U2 (2.5e-2, -1e-4), 0) ] );
      ( "all at once",
        "OPENQASM 2.0;\r\nqreg\tq[2]; \t\r\nu3(1e-9,0.5,-2.5E-3)\tq[1];  \r\n",
        [ G.One (G.U3 (1e-9, 0.5, -2.5e-3), 1) ] );
    ]
  in
  List.iter
    (fun (label, src, expected) ->
      check_gates label expected (Backend.Qasm_parse.parse src).Backend.Qasm_parse.circuit)
    table

let test_quil_whitespace_dialects () =
  let table =
    [
      ("crlf", "CZ 0 1\r\nRZ(0.5) 0\r\n", [ G.Two (G.Cz, 0, 1); G.One (G.Rz 0.5, 0) ]);
      ("trailing blanks", "RX(1.5) 1   \nCZ 0 1  \n", [ G.One (G.Rx 1.5, 1); G.Two (G.Cz, 0, 1) ]);
      ( "tab separators",
        "DECLARE ro BIT[1]\nCZ\t0\t1\nMEASURE\t0\tro[0]\n",
        [ G.Two (G.Cz, 0, 1); G.Measure 0 ] );
      ( "scientific notation",
        "RZ(1e-3) 0\nRX(-2.5E-2) 1\n",
        [ G.One (G.Rz 1e-3, 0); G.One (G.Rx (-2.5e-2), 1) ] );
      ( "all at once",
        "RZ(1E-9)\t0 \t\r\nISWAP\t0\t1  \r\n",
        [ G.One (G.Rz 1e-9, 0); G.Two (G.Iswap, 0, 1) ] );
    ]
  in
  List.iter
    (fun (label, src, expected) ->
      check_gates label expected (Backend.Quil_parse.parse src).Backend.Quil_parse.circuit)
    table

let test_ti_whitespace_dialects () =
  let table =
    [
      ( "crlf",
        "R 0 0.5 0.25\r\nXX 0 1 0.785\r\n",
        [ G.One (G.Rxy (0.5, 0.25), 0); G.Two (G.Xx 0.785, 0, 1) ] );
      ("trailing blanks", "RZ 1 0.5   \nMEAS 1  \n", [ G.One (G.Rz 0.5, 1); G.Measure 1 ]);
      ( "tab separators",
        "R\t0\t0.5\t0.25\nMEAS\t0\n",
        [ G.One (G.Rxy (0.5, 0.25), 0); G.Measure 0 ] );
      ( "scientific notation",
        "RZ 0 1e-3\nXX 0 1 -7.85E-1\n",
        [ G.One (G.Rz 1e-3, 0); G.Two (G.Xx (-0.785), 0, 1) ] );
      ( "all at once",
        "R\t1\t1E-9\t-2.5e-3 \t\r\nMEAS\t1 \r\n",
        [ G.One (G.Rxy (1e-9, -2.5e-3), 1); G.Measure 1 ] );
    ]
  in
  List.iter
    (fun (label, src, expected) ->
      check_gates label expected (Backend.Ti_parse.parse src).Backend.Ti_parse.circuit)
    table

(* ---------- Dispatch ---------- *)

let test_emit_dispatch () =
  Alcotest.(check string) "ibm" "OpenQASM 2.0"
    (Backend.Emit.format_name (compile Machines.ibmq16));
  Alcotest.(check string) "rigetti" "Quil"
    (Backend.Emit.format_name (compile Machines.aspen3));
  Alcotest.(check string) "umd" "UMD TI ASM"
    (Backend.Emit.format_name (compile Machines.umdti));
  List.iter
    (fun machine ->
      let text = Backend.Emit.executable (compile machine) in
      if String.length text < 20 then Alcotest.fail "suspiciously short executable")
    Machines.all

let () =
  Alcotest.run "backend"
    [
      ( "qasm",
        [
          Alcotest.test_case "structure" `Quick test_qasm_structure;
          Alcotest.test_case "foreign gates rejected" `Quick test_qasm_rejects_foreign_gates;
          Alcotest.test_case "wrong vendor rejected" `Quick test_qasm_rejects_wrong_vendor;
          Alcotest.test_case "roundtrip gates" `Quick test_qasm_roundtrip;
          Alcotest.test_case "roundtrip unitary" `Quick test_qasm_roundtrip_unitary;
          Alcotest.test_case "parse errors" `Quick test_qasm_parse_errors;
          Alcotest.test_case "readout map" `Quick test_qasm_parse_readout_map;
        ] );
      ( "quil",
        [
          Alcotest.test_case "structure" `Quick test_quil_structure;
          Alcotest.test_case "wrong vendor rejected" `Quick test_quil_rejects_wrong_vendor;
          Alcotest.test_case "visible only" `Quick test_quil_no_foreign_gates;
          Alcotest.test_case "roundtrip gates" `Quick test_quil_roundtrip;
          Alcotest.test_case "roundtrip unitary" `Quick test_quil_roundtrip_unitary;
          Alcotest.test_case "parse errors" `Quick test_quil_parse_errors;
        ] );
      ( "ti",
        [
          Alcotest.test_case "structure" `Quick test_ti_structure;
          Alcotest.test_case "wrong vendor rejected" `Quick test_ti_rejects_wrong_vendor;
          Alcotest.test_case "roundtrip" `Quick test_ti_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_ti_parse_errors;
        ] );
      ( "dialects",
        [
          Alcotest.test_case "qasm whitespace/sci-notation" `Quick
            test_qasm_whitespace_dialects;
          Alcotest.test_case "quil whitespace/sci-notation" `Quick
            test_quil_whitespace_dialects;
          Alcotest.test_case "ti whitespace/sci-notation" `Quick
            test_ti_whitespace_dialects;
        ] );
      ("dispatch", [ Alcotest.test_case "all machines" `Quick test_emit_dispatch ]);
    ]
