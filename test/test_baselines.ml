(* Baseline-compiler tests: the Qiskit-like, Quil-like and Zulehner-like
   reimplementations must produce correct executables (visible gates,
   coupled 2Q operands, preserved semantics) while exhibiting the
   behavioural signatures the paper attributes to them. *)

module G = Ir.Gate
module Circuit = Ir.Circuit
module Machines = Device.Machines
module Machine = Device.Machine
module Topology = Device.Topology
module Gateset = Device.Gateset
module Pipeline = Triq.Pipeline

let bv4 = Bench_kit.Programs.bv 4
let bv8 = Bench_kit.Programs.bv 8

let check_wellformed (compiled : Triq.Compiled.t) =
  let machine = compiled.Triq.Compiled.machine in
  Alcotest.(check bool) "visible gates" true
    (Gateset.circuit_visible machine.Machine.basis compiled.Triq.Compiled.hardware);
  List.iter
    (fun g ->
      match (g : G.t) with
      | Two (_, a, b) ->
        if not (Topology.coupled machine.Machine.topology a b) then
          Alcotest.failf "2Q gate on uncoupled pair (%d,%d)" a b
      | _ -> ())
    compiled.Triq.Compiled.hardware.Circuit.gates

let success (compiled : Triq.Compiled.t) spec =
  (Sim.Runner.simulate ~config:(Sim.Runner.Config.make ~trajectories:150 ()) compiled spec).Sim.Runner.success_rate

(* ---------- Qiskit-like ---------- *)

let test_qiskit_wellformed () =
  List.iter
    (fun machine ->
      check_wellformed (Baselines.Qiskit_like.compile machine bv4.Bench_kit.Programs.circuit))
    [ Machines.ibmq5; Machines.ibmq14; Machines.ibmq16 ]

let test_qiskit_identity_layout () =
  let compiled = Baselines.Qiskit_like.compile Machines.ibmq14 bv4.Bench_kit.Programs.circuit in
  Alcotest.(check (array int)) "lexicographic layout" [| 0; 1; 2; 3 |]
    compiled.Triq.Compiled.initial_placement

let test_qiskit_correct_output () =
  (* Semantics: the Qiskit-like output still computes the right answer
     (high success on a noiseless-ish ideal check via strong dominance). *)
  let compiled = Baselines.Qiskit_like.compile Machines.ibmq5 bv4.Bench_kit.Programs.circuit in
  let outcome = Sim.Runner.simulate ~config:(Sim.Runner.Config.make ~trajectories:150 ()) compiled bv4.Bench_kit.Programs.spec in
  Alcotest.(check bool)
    (Printf.sprintf "correct answer dominates (%.2f)" outcome.Sim.Runner.success_rate)
    true outcome.Sim.Runner.dominant_correct

let test_qiskit_seed_stability () =
  let a = Baselines.Qiskit_like.compile ~seed:3 Machines.ibmq14 bv8.Bench_kit.Programs.circuit in
  let b = Baselines.Qiskit_like.compile ~seed:3 Machines.ibmq14 bv8.Bench_kit.Programs.circuit in
  Alcotest.(check bool) "same seed, same output" true
    (Circuit.equal a.Triq.Compiled.hardware b.Triq.Compiled.hardware)

let test_triq_beats_qiskit () =
  (* The headline claim, in miniature: noise-adaptive TriQ beats the
     Qiskit baseline on IBMQ14 in geomean over a few benchmarks. *)
  let programs = [ bv4; Bench_kit.Programs.hidden_shift 4; Bench_kit.Programs.toffoli ] in
  let ratios =
    List.map
      (fun (p : Bench_kit.Programs.t) ->
        let triq =
          Pipeline.to_compiled
            (Pipeline.compile_level Machines.ibmq14 p.Bench_kit.Programs.circuit
               ~level:Pipeline.OneQOptCN)
        in
        let qiskit = Baselines.Qiskit_like.compile Machines.ibmq14 p.Bench_kit.Programs.circuit in
        ( success triq p.Bench_kit.Programs.spec,
          success qiskit p.Bench_kit.Programs.spec ))
      programs
  in
  let geo = Mathkit.Stats.geomean_ratio ratios in
  Alcotest.(check bool) (Printf.sprintf "geomean %.2fx > 1" geo) true (geo > 1.0)

(* ---------- Quil-like ---------- *)

let test_quil_wellformed () =
  List.iter
    (fun machine ->
      check_wellformed (Baselines.Quil_like.compile machine bv4.Bench_kit.Programs.circuit))
    [ Machines.agave; Machines.aspen1; Machines.aspen3 ]

let test_quil_home_positions () =
  (* The Quil-like router swaps qubits back: final placement = initial. *)
  let compiled = Baselines.Quil_like.compile Machines.agave bv4.Bench_kit.Programs.circuit in
  Alcotest.(check (array int)) "home positions"
    compiled.Triq.Compiled.initial_placement compiled.Triq.Compiled.final_placement

let test_quil_correct_output () =
  (* Aspen1's noise leaves the mode only ~0.01 ahead of the runner-up, so
     a small Monte-Carlo run resolves it by luck; assert on the exact
     density-matrix backend instead. *)
  let compiled = Baselines.Quil_like.compile Machines.aspen1 bv4.Bench_kit.Programs.circuit in
  let outcome = Sim.Density_runner.run compiled bv4.Bench_kit.Programs.spec in
  let dominant =
    match outcome.Sim.Density_runner.distribution with
    | (bits, _) :: _ -> bits
    | [] -> Alcotest.fail "empty distribution"
  in
  Alcotest.(check string) "correct answer dominates" "111" dominant

let test_quil_more_swaps_than_triq () =
  let p = bv4 in
  let quil = Baselines.Quil_like.compile Machines.agave p.Bench_kit.Programs.circuit in
  let triq =
    Pipeline.compile_level Machines.agave p.Bench_kit.Programs.circuit ~level:Pipeline.OneQOptCN
  in
  Alcotest.(check bool)
    (Printf.sprintf "quil %d >= triq %d swaps" quil.Triq.Compiled.swap_count
       triq.Pipeline.swap_count)
    true
    (quil.Triq.Compiled.swap_count >= triq.Pipeline.swap_count)

(* ---------- Zulehner-like ---------- *)

let test_zulehner_wellformed () =
  check_wellformed (Baselines.Zulehner_like.compile Machines.ibmq16 bv8.Bench_kit.Programs.circuit)

let test_zulehner_locality () =
  (* The greedy placement keeps interacting qubits within small hop
     distances — for BV (star graph) the ancilla must sit adjacent to at
     least two data qubits on IBMQ16. *)
  let compiled = Baselines.Zulehner_like.compile Machines.ibmq16 bv4.Bench_kit.Programs.circuit in
  let placement = compiled.Triq.Compiled.initial_placement in
  let topo = Machines.ibmq16.Machine.topology in
  let ancilla = placement.(3) in
  let adjacent =
    List.length
      (List.filter
         (fun d -> Topology.coupled topo placement.(d) ancilla)
         [ 0; 1; 2 ])
  in
  Alcotest.(check bool) (Printf.sprintf "%d adjacent" adjacent) true (adjacent >= 2)

let test_zulehner_correct_output () =
  let compiled = Baselines.Zulehner_like.compile Machines.ibmq16 bv4.Bench_kit.Programs.circuit in
  let outcome = Sim.Runner.simulate ~config:(Sim.Runner.Config.make ~trajectories:150 ()) compiled bv4.Bench_kit.Programs.spec in
  Alcotest.(check bool) "correct answer dominates" true outcome.Sim.Runner.dominant_correct

let test_compiler_labels () =
  let q = Baselines.Qiskit_like.compile Machines.ibmq5 bv4.Bench_kit.Programs.circuit in
  let u = Baselines.Quil_like.compile Machines.agave bv4.Bench_kit.Programs.circuit in
  let z = Baselines.Zulehner_like.compile Machines.ibmq16 bv4.Bench_kit.Programs.circuit in
  Alcotest.(check string) "qiskit" "Qiskit" q.Triq.Compiled.compiler;
  Alcotest.(check string) "quil" "Quil" u.Triq.Compiled.compiler;
  Alcotest.(check string) "zulehner" "Zulehner" z.Triq.Compiled.compiler

let () =
  Alcotest.run "baselines"
    [
      ( "qiskit_like",
        [
          Alcotest.test_case "wellformed" `Quick test_qiskit_wellformed;
          Alcotest.test_case "identity layout" `Quick test_qiskit_identity_layout;
          Alcotest.test_case "correct output" `Quick test_qiskit_correct_output;
          Alcotest.test_case "seed stability" `Quick test_qiskit_seed_stability;
          Alcotest.test_case "triq beats qiskit" `Quick test_triq_beats_qiskit;
        ] );
      ( "quil_like",
        [
          Alcotest.test_case "wellformed" `Quick test_quil_wellformed;
          Alcotest.test_case "home positions" `Quick test_quil_home_positions;
          Alcotest.test_case "correct output" `Quick test_quil_correct_output;
          Alcotest.test_case "swap overhead" `Quick test_quil_more_swaps_than_triq;
        ] );
      ( "zulehner_like",
        [
          Alcotest.test_case "wellformed" `Quick test_zulehner_wellformed;
          Alcotest.test_case "locality" `Quick test_zulehner_locality;
          Alcotest.test_case "correct output" `Quick test_zulehner_correct_output;
        ] );
      ("labels", [ Alcotest.test_case "compiler names" `Quick test_compiler_labels ]);
    ]
