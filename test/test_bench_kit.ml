(* Benchmark-suite tests: the 12 programs compute their textbook answers,
   the sequence and supremacy generators behave, and the experiment
   harness produces shape-correct data. *)

module Programs = Bench_kit.Programs
module Sequences = Bench_kit.Sequences
module Supremacy = Bench_kit.Supremacy
module Experiments = Bench_kit.Experiments
module Circuit = Ir.Circuit
module G = Ir.Gate

let expected_bits (p : Programs.t) =
  match p.Programs.spec.Ir.Spec.expected with
  | [ (bits, _) ] -> bits
  | _ -> Alcotest.failf "%s: spec not deterministic" p.Programs.name

(* ---------- The 12 programs ---------- *)

let test_twelve_benchmarks () =
  Alcotest.(check int) "count" 12 (List.length Programs.all);
  Alcotest.(check (list string)) "paper order"
    [ "BV4"; "BV6"; "BV8"; "HS2"; "HS4"; "HS6"; "Toffoli"; "Fredkin"; "Or";
      "Peres"; "QFT4"; "Adder" ]
    (List.map (fun (p : Programs.t) -> p.Programs.name) Programs.all)

let test_bv_answers () =
  (* BV recovers the hidden string. *)
  Alcotest.(check string) "bv4" "111" (expected_bits (Programs.bv 4));
  Alcotest.(check string) "bv6" "11111" (expected_bits (Programs.bv 6));
  Alcotest.(check string) "bv8" "1111111" (expected_bits (Programs.bv 8));
  Alcotest.(check string) "bv custom" "101" (expected_bits (Programs.bv_with_string "101"))

let test_hs_answers () =
  (* Hidden shift recovers the shift pattern. *)
  Alcotest.(check string) "hs2" "11" (expected_bits (Programs.hidden_shift 2));
  Alcotest.(check string) "hs4" "1111" (expected_bits (Programs.hidden_shift 4));
  Alcotest.(check string) "hs custom" "1010"
    (expected_bits (Programs.hidden_shift_with "1010"))

let test_logic_gate_answers () =
  (* Toffoli on |110>: target flips -> 111. *)
  Alcotest.(check string) "toffoli" "111" (expected_bits Programs.toffoli);
  (* Fredkin on |1;1,0>: targets swap -> 101. *)
  Alcotest.(check string) "fredkin" "101" (expected_bits Programs.fredkin);
  (* Or of 1,0 -> target 1, inputs restored. *)
  Alcotest.(check string) "or" "101" (expected_bits Programs.or_gate);
  (* Peres on |110>: b ^= a, c ^= ab -> 101. *)
  Alcotest.(check string) "peres" "101" (expected_bits Programs.peres)

let test_adder_answer () =
  (* 1 + 1 + 0: sum bit 0, carry 1; inputs cin=0 and a=1 restored. *)
  Alcotest.(check string) "adder" "0101" (expected_bits Programs.adder)

let test_qft_deterministic () =
  let p = Programs.qft 4 in
  (* k = 2^(n-1) + 1 = 9 = 1001 in the measured bit order. *)
  Alcotest.(check string) "qft4 recovers k" "1001" (expected_bits p);
  Alcotest.(check string) "qft3" "101" (expected_bits (Programs.qft 3))

let test_program_validation () =
  Alcotest.(check bool) "bv too small" true
    (try ignore (Programs.bv 1); false with Invalid_argument _ -> true);
  Alcotest.(check bool) "hs odd" true
    (try ignore (Programs.hidden_shift 3); false with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad custom" true
    (try
       ignore
         (Programs.custom ~name:"bad" ~description:"superposition" ~n:1
            [ G.One (G.H, 0) ] ~measured:[ 0 ]);
       false
     with Failure _ -> true)

let test_find () =
  Alcotest.(check bool) "toffoli found" true (Programs.find "toffoli" <> None);
  Alcotest.(check bool) "missing" true (Programs.find "nonesuch" = None)

let test_extras () =
  Alcotest.(check int) "four extras" 4 (List.length Programs.extras);
  (* GHZ's spec is a distribution; runs must score well on UMDTI. *)
  let ghz = Programs.ghz 3 in
  Alcotest.(check int) "two outcomes" 2
    (List.length ghz.Programs.spec.Ir.Spec.expected);
  let compiled =
    Triq.Pipeline.to_compiled
      (Triq.Pipeline.compile_level Device.Machines.umdti ghz.Programs.circuit
         ~level:Triq.Pipeline.OneQOptCN)
  in
  let outcome = Sim.Runner.simulate ~config:(Sim.Runner.Config.make ~trajectories:150 ()) compiled ghz.Programs.spec in
  Alcotest.(check bool)
    (Printf.sprintf "ghz high overlap (%.2f)" outcome.Sim.Runner.success_rate)
    true
    (outcome.Sim.Runner.success_rate > 0.85);
  (* Grover2 is deterministic. *)
  Alcotest.(check string) "grover answer" "11" (expected_bits Programs.grover2);
  Alcotest.(check bool) "extras findable" true (Programs.find "ghz5" <> None);
  (* Grover3 after 2 iterations concentrates ~94.5% on |111>. *)
  let g3 = Programs.grover3 2 in
  (match List.assoc_opt "111" g3.Programs.spec.Ir.Spec.expected with
  | Some p -> Alcotest.(check bool) (Printf.sprintf "grover3 peak %.3f" p) true (p > 0.9)
  | None -> Alcotest.fail "grover3 expected distribution lacks |111>")

(* ---------- Scaffold sources of the 12 benchmarks ---------- *)

let test_scaffold_sources_match_builtins () =
  List.iter2
    (fun (name, source) (p : Programs.t) ->
      Alcotest.(check string) (name ^ " named consistently") name p.Programs.name;
      let lowered = Scaffold.Lower.compile_string source in
      (* Same measured-qubit order... *)
      Alcotest.(check (list int)) (name ^ " measured")
        p.Programs.spec.Ir.Spec.measured lowered.Scaffold.Lower.measured;
      (* ... and the same (deterministic) answer. *)
      let dist =
        Sim.Runner.ideal_distribution
          (Circuit.body lowered.Scaffold.Lower.circuit)
          ~measured:lowered.Scaffold.Lower.measured
      in
      match (dist, p.Programs.spec.Ir.Spec.expected) with
      | (bits, prob) :: _, [ (expected, _) ] ->
        Alcotest.(check string) (name ^ " answer") expected bits;
        if prob < 0.99 then Alcotest.failf "%s: not deterministic (%f)" name prob
      | _ -> Alcotest.failf "%s: unexpected spec shape" name)
    Bench_kit.Scaffold_sources.all Programs.all

let test_scaffold_sources_gate_counts () =
  (* The source-level programs must have the same 2Q structure as the IR
     constructions (same interaction multiset after flattening). *)
  List.iter2
    (fun (name, source) (p : Programs.t) ->
      let lowered = Scaffold.Lower.compile_string source in
      let count c = Circuit.two_q_count (Ir.Decompose.flatten c) in
      Alcotest.(check int) (name ^ " 2q count")
        (count p.Programs.circuit)
        (count lowered.Scaffold.Lower.circuit))
    Bench_kit.Scaffold_sources.all Programs.all

(* ---------- Sequences ---------- *)

let test_sequences_parity () =
  (* k Toffolis on |110>: target ends at k mod 2. *)
  Alcotest.(check string) "x1" "111" (expected_bits (Sequences.toffoli 1));
  Alcotest.(check string) "x2" "110" (expected_bits (Sequences.toffoli 2));
  Alcotest.(check string) "x3" "111" (expected_bits (Sequences.toffoli 3));
  Alcotest.(check string) "fredkin x1" "101" (expected_bits (Sequences.fredkin 1));
  Alcotest.(check string) "fredkin x2" "110" (expected_bits (Sequences.fredkin 2))

let test_sequences_grow () =
  let twoq k =
    Circuit.two_q_count (Ir.Decompose.flatten (Sequences.toffoli k).Programs.circuit)
  in
  Alcotest.(check int) "linear growth" (2 * twoq 1) (twoq 2);
  Alcotest.(check bool) "validation" true
    (try ignore (Sequences.toffoli 0); false with Invalid_argument _ -> true)

(* ---------- Supremacy ---------- *)

let test_supremacy_shape () =
  let c = Supremacy.circuit ~seed:1 ~rows:4 ~cols:4 ~depth:8 in
  Alcotest.(check int) "qubits" 16 c.Circuit.n_qubits;
  Alcotest.(check bool) "has 2q gates" true (Supremacy.two_q_count c > 0);
  (* All CZs must be grid-adjacent. *)
  let topo = Device.Topology.grid 4 4 in
  List.iter
    (fun g ->
      match (g : G.t) with
      | Two (Cz, a, b) ->
        if not (Device.Topology.coupled topo a b) then Alcotest.fail "non-adjacent CZ"
      | Two _ -> Alcotest.fail "unexpected 2q kind"
      | _ -> ())
    c.Circuit.gates

let test_supremacy_deterministic () =
  let a = Supremacy.circuit ~seed:7 ~rows:4 ~cols:4 ~depth:8 in
  let b = Supremacy.circuit ~seed:7 ~rows:4 ~cols:4 ~depth:8 in
  let c = Supremacy.circuit ~seed:8 ~rows:4 ~cols:4 ~depth:8 in
  Alcotest.(check bool) "same seed" true (Circuit.equal a b);
  Alcotest.(check bool) "different seed" false (Circuit.equal a c)

let test_supremacy_paper_scale () =
  (* 72 qubits, depth 128: the paper's largest configuration has ~2032 2Q
     gates; our generator should land in that regime. *)
  let c = Supremacy.circuit ~seed:1 ~rows:6 ~cols:12 ~depth:128 in
  Alcotest.(check int) "qubits" 72 c.Circuit.n_qubits;
  let n = Supremacy.two_q_count c in
  Alcotest.(check bool) (Printf.sprintf "2q count %d in range" n) true
    (n > 1500 && n < 6000)

(* ---------- Experiment harness (shape checks, small trajectories) ---------- *)

let test_fig1_shape () =
  let rows = Experiments.fig1_rows () in
  Alcotest.(check int) "seven rows" 7 (List.length rows)

let test_fig3_shape () =
  let series = Experiments.fig3_series () in
  Alcotest.(check int) "four couplings" 4 (List.length series);
  List.iter
    (fun (_, values) ->
      Alcotest.(check int) "26 days" 26 (List.length values);
      List.iter (fun v -> if v <= 0.0 || v > 0.5 then Alcotest.fail "bad error rate") values)
    series

let test_fig8_shape () =
  let data = Experiments.fig8_data () in
  Alcotest.(check int) "three machines" 3 (List.length data);
  List.iter
    (fun (machine, rows) ->
      Alcotest.(check int) (machine ^ " rows") 12 (List.length rows);
      (* 1QOpt never uses more pulses than N. *)
      List.iter
        (fun (r : int Experiments.row) ->
          match (List.assoc "TriQ-N" r.Experiments.values,
                 List.assoc "TriQ-1QOpt" r.Experiments.values) with
          | Some n, Some o ->
            if o > n then Alcotest.failf "%s/%s: %d > %d" machine r.Experiments.bench o n
          | None, None -> ()
          | _ -> Alcotest.fail "fit mismatch between levels")
        rows)
    data

let test_fig10_comm_opt_reduces () =
  let data = Experiments.fig10_counts () in
  List.iter
    (fun ((machine : string), rows) ->
      let geo =
        Experiments.geomean_improvement rows ~better:"TriQ-1QOptC"
          ~baseline:"TriQ-1QOpt" float_of_int
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s geomean %.2f >= 1" machine geo)
        true (geo >= 1.0))
    data

let test_fig11_noise_adaptivity_helps () =
  let rows = Experiments.fig11_ibm_success ~trajectories:100 () in
  let geo =
    Experiments.geomean_improvement ~invert:true rows ~better:"TriQ-1QOptCN"
      ~baseline:"Qiskit" Fun.id
  in
  Alcotest.(check bool) (Printf.sprintf "beats qiskit: %.2fx" geo) true (geo > 1.2)

let test_fig12_shape () =
  let rows = Experiments.fig12_data ~trajectories:60 () in
  Alcotest.(check int) "12 benchmarks" 12 (List.length rows);
  List.iter
    (fun (r : float Experiments.row) ->
      Alcotest.(check int) "seven machines" 7 (List.length r.Experiments.values);
      List.iter
        (fun (_, v) ->
          match v with
          | Some s -> if s < 0.0 || s > 1.0 then Alcotest.fail "rate out of range"
          | None -> ())
        r.Experiments.values)
    rows;
  (* UMDTI dominates on the benchmarks it fits (paper's headline cross-
     platform observation). *)
  let umd_wins =
    List.for_all
      (fun (r : float Experiments.row) ->
        match List.assoc "UMDTI" r.Experiments.values with
        | None -> true
        | Some umd ->
          List.for_all
            (fun (name, v) ->
              name = "UMDTI" || match v with None -> true | Some s -> umd >= s -. 0.05)
            r.Experiments.values)
      rows
  in
  Alcotest.(check bool) "umdti dominates" true umd_wins

let test_scaling_fast () =
  let data = Experiments.scaling_data ~node_budget:5_000 ~depth:8 () in
  Alcotest.(check int) "six instances" 6 (List.length data);
  let _, largest_qubits, _, largest_time = List.nth data 5 in
  Alcotest.(check int) "72 qubits" 72 largest_qubits;
  Alcotest.(check bool)
    (Printf.sprintf "72q compiles fast (%.2fs)" largest_time)
    true (largest_time < 30.0)

let test_related_improvement () =
  let rows = Experiments.related_data () in
  let geo =
    Experiments.geomean_improvement rows ~better:"TriQ-1QOptC" ~baseline:"Zulehner"
      float_of_int
  in
  Alcotest.(check bool) (Printf.sprintf "geomean %.2fx >= 1" geo) true (geo >= 1.0)

let test_geomean_improvement_helper () =
  let rows =
    [
      { Experiments.bench = "a"; values = [ ("x", Some 2.0); ("y", Some 4.0) ] };
      { Experiments.bench = "b"; values = [ ("x", Some 3.0); ("y", Some 6.0) ] };
    ]
  in
  (* Counts: lower better; x is 2x better than y. *)
  Alcotest.(check (float 1e-9)) "counts" 2.0
    (Experiments.geomean_improvement rows ~better:"x" ~baseline:"y" Fun.id);
  (* Rates: higher better; y is 2x better than x. *)
  Alcotest.(check (float 1e-9)) "rates" 2.0
    (Experiments.geomean_improvement ~invert:true rows ~better:"y" ~baseline:"x" Fun.id)

(* ---------- Report generator ---------- *)

let test_report_sections () =
  let report = Bench_kit.Report.generate ~trajectories:60 () in
  let contains needle =
    let h = String.length report and n = String.length needle in
    let rec scan i = i + n <= h && (String.sub report i n = needle || scan (i + 1)) in
    scan 0
  in
  List.iter
    (fun section ->
      if not (contains section) then Alcotest.failf "report lacks %S" section)
    [
      "# TriQ reproduction"; "## Figure 1"; "## Figure 3"; "## Figure 8";
      "## Figure 9"; "## Figure 10"; "## Figure 11"; "## Figure 12";
      "## Section 6.5"; "## Headline summary"; "## Extensions"; "| Benchmark |";
    ];
  Alcotest.(check bool) "substantial" true (String.length report > 4000)

let () =
  Alcotest.run "bench_kit"
    [
      ( "programs",
        [
          Alcotest.test_case "twelve benchmarks" `Quick test_twelve_benchmarks;
          Alcotest.test_case "bv answers" `Quick test_bv_answers;
          Alcotest.test_case "hs answers" `Quick test_hs_answers;
          Alcotest.test_case "logic gates" `Quick test_logic_gate_answers;
          Alcotest.test_case "adder" `Quick test_adder_answer;
          Alcotest.test_case "qft" `Quick test_qft_deterministic;
          Alcotest.test_case "validation" `Quick test_program_validation;
          Alcotest.test_case "find" `Quick test_find;
          Alcotest.test_case "extras (ghz, grover)" `Quick test_extras;
        ] );
      ( "scaffold sources",
        [
          Alcotest.test_case "match builtins" `Quick test_scaffold_sources_match_builtins;
          Alcotest.test_case "gate counts" `Quick test_scaffold_sources_gate_counts;
        ] );
      ( "sequences",
        [
          Alcotest.test_case "parity" `Quick test_sequences_parity;
          Alcotest.test_case "growth" `Quick test_sequences_grow;
        ] );
      ( "supremacy",
        [
          Alcotest.test_case "shape" `Quick test_supremacy_shape;
          Alcotest.test_case "deterministic" `Quick test_supremacy_deterministic;
          Alcotest.test_case "paper scale" `Quick test_supremacy_paper_scale;
        ] );
      ("report", [ Alcotest.test_case "sections" `Slow test_report_sections ]);
      ( "experiments",
        [
          Alcotest.test_case "fig1 shape" `Quick test_fig1_shape;
          Alcotest.test_case "fig3 shape" `Quick test_fig3_shape;
          Alcotest.test_case "fig8 monotone" `Quick test_fig8_shape;
          Alcotest.test_case "fig10 reduces 2q" `Quick test_fig10_comm_opt_reduces;
          Alcotest.test_case "fig11 beats qiskit" `Slow test_fig11_noise_adaptivity_helps;
          Alcotest.test_case "fig12 shape" `Slow test_fig12_shape;
          Alcotest.test_case "scaling fast" `Quick test_scaling_fast;
          Alcotest.test_case "related improvement" `Quick test_related_improvement;
          Alcotest.test_case "geomean helper" `Quick test_geomean_improvement_helper;
        ] );
    ]
