(* Tests for the dataflow layer: the stabilizer tableau domain, backward
   liveness, the entanglement partition, phase propagation, the Analyze
   facade, and per-pass translation validation — including deliberately
   broken passes that must be caught statically (no simulator involved)
   and the benchmark x machine x level matrix that must come back clean
   under deep validation. *)

module G = Ir.Gate
module Circuit = Ir.Circuit
module Diag = Analysis.Diag
module Tableau = Dataflow.Tableau
module Liveness = Dataflow.Liveness
module Entangle = Dataflow.Entangle
module Phase = Dataflow.Phase
module Analyze = Dataflow.Analyze
module Validate = Dataflow.Validate
module Machines = Device.Machines
module Pass = Triq.Pass
module Pipeline = Triq.Pipeline
module Programs = Bench_kit.Programs

let circ n gates = Circuit.create n gates

let gen_strings t =
  List.map Tableau.generator_to_string (Tableau.generators (Tableau.canonicalize t))

let rules ds = List.map (fun d -> d.Diag.rule) ds

(* ---------- tableau ---------- *)

let test_tableau_init () =
  Alcotest.(check (list string)) "|00> = <+ZI,+IZ>" [ "+ZI"; "+IZ" ]
    (gen_strings (Tableau.init 2))

let test_tableau_h () =
  let t = Tableau.init 1 in
  Alcotest.(check bool) "H applies" true (Tableau.apply t (G.One (G.H, 0)));
  Alcotest.(check (list string)) "H|0> = <+X>" [ "+X" ] (gen_strings t)

let test_tableau_bell () =
  (* Two constructions of the same Bell state must canonicalize equal. *)
  let a = Option.get (Tableau.of_circuit (circ 2 [ G.One (G.H, 0); G.Two (G.Cnot, 0, 1) ])) in
  let b =
    Option.get
      (Tableau.of_circuit
         (circ 2 [ G.One (G.H, 1); G.Two (G.Cnot, 1, 0) ]))
  in
  Alcotest.(check (list string)) "Bell generators" [ "+XX"; "+ZZ" ] (gen_strings a);
  Alcotest.(check bool) "constructions agree" true (Tableau.equal a b)

let test_tableau_sign () =
  (* X flips the sign of the Z stabilizer: |1> = <-Z>, caught by equal. *)
  let zero = Tableau.init 1 in
  let one = Option.get (Tableau.of_circuit (circ 1 [ G.One (G.X, 0) ])) in
  Alcotest.(check (list string)) "|1> = <-Z>" [ "-Z" ] (gen_strings one);
  Alcotest.(check bool) "|0> <> |1>" false (Tableau.equal zero one)

let test_clifford_recognition () =
  List.iter
    (fun (g, want) ->
      Alcotest.(check bool)
        (Format.asprintf "clifford? %a" G.pp g)
        want (Tableau.is_clifford_gate g))
    [
      (G.One (G.H, 0), true);
      (G.One (G.S, 0), true);
      (G.One (G.T, 0), false);
      (G.One (G.Rz (Float.pi /. 2.0), 0), true);
      (G.One (G.Rz (Float.pi /. 4.0), 0), false);
      (G.Two (G.Cnot, 0, 1), true);
      (G.Two (G.Cz, 0, 1), true);
      (G.Two (G.Xx (Float.pi /. 4.0), 0, 1), true);
      (G.Two (G.Xx (Float.pi /. 8.0), 0, 1), false);
      (G.Ccx (0, 1, 2), false);
      (G.Measure 0, false);
    ]

let test_clifford_prefix () =
  let c = circ 1 [ G.One (G.H, 0); G.One (G.T, 0); G.One (G.H, 0) ] in
  Alcotest.(check int) "prefix stops at T" 1 (Tableau.clifford_prefix c);
  Alcotest.(check bool) "T circuit not Clifford" true
    (Tableau.of_circuit c = None)

let test_measurement_equal () =
  (* S before a Z-readout is unobservable: |+> and S|+> agree once the
     wire is measured, but are genuinely different states otherwise. *)
  let plus = Option.get (Tableau.of_circuit (circ 1 [ G.One (G.H, 0) ])) in
  let s_plus =
    Option.get (Tableau.of_circuit (circ 1 [ G.One (G.H, 0); G.One (G.S, 0) ]))
  in
  Alcotest.(check bool) "distinct states" false (Tableau.equal plus s_plus);
  Alcotest.(check bool) "equal under readout" true
    (Tableau.measurement_equal plus s_plus ~measured:[ 0 ]);
  (* ... but a sign flip on a measured wire is observable. *)
  let bell = circ 2 [ G.One (G.H, 0); G.Two (G.Cnot, 0, 1) ] in
  let tb = Option.get (Tableau.of_circuit bell) in
  let flipped =
    Option.get
      (Tableau.of_circuit
         (circ 2 [ G.One (G.H, 0); G.Two (G.Cnot, 0, 1); G.One (G.X, 1) ]))
  in
  Alcotest.(check bool) "X on measured wire caught" false
    (Tableau.measurement_equal tb flipped ~measured:[ 0; 1 ])

let test_embed () =
  (* |+> placed on wire 1 of a 2-wire machine: the unused wire is |0>. *)
  let plus = Option.get (Tableau.of_circuit (circ 1 [ G.One (G.H, 0) ])) in
  let t = Tableau.embed plus ~n:2 ~map:[| 1 |] in
  Alcotest.(check (list string)) "embedded" [ "+IX"; "+ZI" ] (gen_strings t)

(* ---------- liveness ---------- *)

let test_liveness_dead () =
  (* H(2) cannot reach the single measurement on q1; CNOT(1,2) can. *)
  let c =
    circ 3 [ G.Two (G.Cnot, 1, 2); G.One (G.H, 2); G.Measure 1 ]
  in
  Alcotest.(check (list int)) "H(2) dead" [ 1 ] (Liveness.dead_indices c);
  Alcotest.(check (list string)) "dead.gate diag" [ "dead.gate" ]
    (rules (Liveness.dead_diags ~layer:"t" c))

let test_liveness_backward_only () =
  (* A gate *after* the last interaction with a measured wire is dead even
     though its qubit was live earlier. *)
  let c =
    circ 2 [ G.Two (G.Cnot, 0, 1); G.One (G.X, 1); G.Measure 0 ]
  in
  Alcotest.(check (list int)) "late X dead" [ 1 ] (Liveness.dead_indices c)

let test_liveness_vacuous () =
  let c = circ 2 [ G.One (G.H, 0); G.Two (G.Cnot, 0, 1) ] in
  Alcotest.(check (list int)) "no measures => no lint" []
    (Liveness.dead_indices c)

(* ---------- entanglement partition ---------- *)

let test_entangle_components () =
  let c =
    circ 5
      [
        G.One (G.H, 0); G.Two (G.Cnot, 0, 1); G.Two (G.Cz, 2, 3);
        G.One (G.X, 4);
      ]
  in
  Alcotest.(check (list (list int))) "three classes"
    [ [ 0; 1 ]; [ 2; 3 ]; [ 4 ] ]
    (Entangle.components c);
  Alcotest.(check (list (list int))) "unused qubits omitted" [ [ 1 ] ]
    (Entangle.components (circ 4 [ G.One (G.H, 1) ]))

(* ---------- phase propagation ---------- *)

let test_phase_mergeable () =
  (* Z .. S on q0 merge across a CNOT control but not across H. *)
  let merge =
    circ 2 [ G.One (G.Z, 0); G.Two (G.Cnot, 0, 1); G.One (G.S, 0) ]
  in
  Alcotest.(check (list (pair int int))) "across control" [ (0, 2) ]
    (Phase.mergeable merge);
  let blocked =
    circ 1 [ G.One (G.Z, 0); G.One (G.H, 0); G.One (G.S, 0) ]
  in
  Alcotest.(check (list (pair int int))) "H blocks" [] (Phase.mergeable blocked);
  let chain =
    circ 1 [ G.One (G.Rz 0.1, 0); G.One (G.Rz 0.2, 0); G.One (G.Rz 0.3, 0) ]
  in
  Alcotest.(check (list (pair int int))) "chain pairs" [ (0, 1); (1, 2) ]
    (Phase.mergeable chain);
  Alcotest.(check (list string)) "opt.missed diag" [ "opt.missed" ]
    (rules (Phase.diags ~layer:"t" merge))

(* ---------- analyze facade ---------- *)

let test_analyze_summary () =
  let c =
    circ 4
      [
        G.One (G.H, 0); G.One (G.Y, 3); G.Two (G.Cnot, 0, 1); G.One (G.Z, 1);
        G.Two (G.Cnot, 1, 2); G.One (G.S, 1); G.One (G.X, 3); G.Measure 0;
        G.Measure 1; G.Measure 2;
      ]
  in
  let s = Analyze.summarize c in
  Alcotest.(check int) "qubits" 4 s.Analyze.n_qubits;
  Alcotest.(check int) "used" 4 s.Analyze.used_qubits;
  Alcotest.(check bool) "clifford" true s.Analyze.clifford.Analyze.is_clifford;
  Alcotest.(check int) "body gates" 7 s.Analyze.clifford.Analyze.body_gates;
  Alcotest.(check (list int)) "dead q3 gates" [ 1; 6 ] s.Analyze.dead;
  Alcotest.(check (list (list int))) "components" [ [ 0; 1; 2 ]; [ 3 ] ]
    s.Analyze.components;
  Alcotest.(check (list (pair int int))) "mergeable" [ (3, 5) ]
    s.Analyze.mergeable;
  Alcotest.(check (list string)) "lints sorted"
    [ "dead.gate"; "dead.gate"; "opt.missed" ]
    (rules (Analyze.lints ~layer:"t" c))

(* ---------- translation validation, unit level ---------- *)

let identity_placement n = Array.init n (fun i -> i)

let test_validate_identity () =
  let c =
    circ 2 [ G.One (G.H, 0); G.Two (G.Cnot, 0, 1); G.Measure 0; G.Measure 1 ]
  in
  let p = identity_placement 2 in
  Alcotest.(check (list string)) "identity pass clean" []
    (rules
       (Validate.check ~layer:"t" ~before:c ~before_placement:p ~after:c
          ~after_placement:p))

let test_validate_clifford_mismatch () =
  let before =
    circ 2 [ G.One (G.H, 0); G.Two (G.Cnot, 0, 1); G.Measure 0; G.Measure 1 ]
  in
  let after =
    circ 2
      [
        G.One (G.H, 0); G.Two (G.Cnot, 0, 1); G.One (G.X, 1); G.Measure 0;
        G.Measure 1;
      ]
  in
  let p = identity_placement 2 in
  Alcotest.(check (list string)) "sign flip caught" [ "clifford.mismatch" ]
    (rules
       (Validate.check ~layer:"t" ~before ~before_placement:p ~after
          ~after_placement:p))

let test_validate_live_mismatch () =
  let before = circ 2 [ G.One (G.H, 0); G.Measure 0; G.Measure 1 ] in
  let after = circ 2 [ G.One (G.H, 0); G.Measure 0 ] in
  let p = identity_placement 2 in
  let ds =
    Validate.check ~layer:"t" ~before ~before_placement:p ~after
      ~after_placement:p
  in
  Alcotest.(check bool) "dropped measure caught" true
    (List.mem "live.mismatch" (rules ds))

(* ---------- broken passes caught by the deep harness ---------- *)

(* A Clifford program a pass pipeline will keep Clifford. *)
let ghz_program =
  circ 3
    [
      G.One (G.H, 0); G.Two (G.Cnot, 0, 1); G.Two (G.Cnot, 1, 2); G.Measure 0;
      G.Measure 1; G.Measure 2;
    ]

let deep_config = Pass.Config.make ~validate:Pass.Config.Deep ()

let violation_rules f =
  match f () with
  | _ -> None
  | exception Diag.Violation (pass, ds) -> Some (pass, rules ds)

(* The acceptance fixture: a deliberately broken pass must be caught
   statically — by the deep validator, with a stable rule id, and without
   ever invoking a simulator. *)
let test_evil_pass_caught () =
  let evil =
    Pass.make ~name:"evil-x" ~about:"injects X on a measured wire" (fun st ->
        let c = st.Pass.circuit in
        {
          st with
          Pass.circuit =
            Circuit.create c.Circuit.n_qubits
              (c.Circuit.gates @ [ G.One (G.X, 0) ]);
        })
  in
  let state = Pass.init ~config:deep_config Machines.ibmq5 ghz_program in
  match violation_rules (fun () -> Pass.run_pass state evil) with
  | Some ("evil-x", rules) ->
    Alcotest.(check (list string)) "stable rule id" [ "clifford.mismatch" ] rules
  | Some (pass, _) -> Alcotest.failf "violation blamed %s, wanted evil-x" pass
  | None -> Alcotest.fail "evil pass escaped deep validation"

let test_measure_dropper_caught () =
  let dropper =
    Pass.make ~name:"drop-measure" ~about:"loses the last readout" (fun st ->
        let c = st.Pass.circuit in
        let gates = List.filter (fun g -> g <> G.Measure 2) c.Circuit.gates in
        { st with Pass.circuit = Circuit.create c.Circuit.n_qubits gates })
  in
  let state = Pass.init ~config:deep_config Machines.ibmq5 ghz_program in
  match violation_rules (fun () -> Pass.run_pass state dropper) with
  | Some ("drop-measure", rules) ->
    Alcotest.(check bool) "live.mismatch fired" true
      (List.mem "live.mismatch" rules)
  | Some (pass, _) -> Alcotest.failf "violation blamed %s" pass
  | None -> Alcotest.fail "measure dropper escaped deep validation"

(* Shape-only validation must NOT catch the semantic break (it is a
   well-formed circuit) — deep is strictly stronger. *)
let test_shape_misses_semantic_break () =
  let evil =
    Pass.make ~name:"evil-x" (fun st ->
        let c = st.Pass.circuit in
        {
          st with
          Pass.circuit =
            Circuit.create c.Circuit.n_qubits
              (c.Circuit.gates @ [ G.One (G.X, 0) ]);
        })
  in
  let shape = Pass.Config.make ~validate:Pass.Config.Shape () in
  let state = Pass.init ~config:shape Machines.ibmq5 ghz_program in
  match violation_rules (fun () -> Pass.run_pass state evil) with
  | None -> ()
  | Some (_, rules) ->
    Alcotest.failf "shape validation unexpectedly fired: %s"
      (String.concat "," rules)

(* ---------- the clean matrix ---------- *)

(* Every bundled benchmark, on three machines, at all four levels, under
   deep validation: zero translation-validation errors (the ISSUE's
   acceptance bar). Capacity misfits are skipped, not failures. *)
let test_deep_matrix () =
  let machines = [ Machines.ibmq14; Machines.aspen3; Machines.agave ] in
  let config =
    Pass.Config.make ~validate:Pass.Config.Deep ~node_budget:20_000 ()
  in
  let ran = ref 0 in
  List.iter
    (fun (p : Programs.t) ->
      List.iter
        (fun machine ->
          if Device.Machine.fits machine p.Programs.circuit then
            List.iter
              (fun level ->
                match
                  Pipeline.compile_level ~config machine p.Programs.circuit
                    ~level
                with
                | _ -> incr ran
                | exception Diag.Violation (pass, ds) ->
                  Alcotest.failf "%s on %s at %s: pass %s violated %s"
                    p.Programs.name machine.Device.Machine.name
                    (Pipeline.level_name level) pass
                    (String.concat "," (rules ds)))
              Pipeline.all_levels)
        machines)
    Programs.all;
  Alcotest.(check bool)
    (Printf.sprintf "matrix ran %d combinations" !ran)
    true (!ran >= 100)

let () =
  Alcotest.run "dataflow"
    [
      ( "tableau",
        [
          Alcotest.test_case "init" `Quick test_tableau_init;
          Alcotest.test_case "hadamard" `Quick test_tableau_h;
          Alcotest.test_case "bell" `Quick test_tableau_bell;
          Alcotest.test_case "sign" `Quick test_tableau_sign;
          Alcotest.test_case "clifford recognition" `Quick
            test_clifford_recognition;
          Alcotest.test_case "clifford prefix" `Quick test_clifford_prefix;
          Alcotest.test_case "measurement dephasing" `Quick
            test_measurement_equal;
          Alcotest.test_case "embed" `Quick test_embed;
        ] );
      ( "liveness",
        [
          Alcotest.test_case "dead gate" `Quick test_liveness_dead;
          Alcotest.test_case "backward only" `Quick test_liveness_backward_only;
          Alcotest.test_case "no measures" `Quick test_liveness_vacuous;
        ] );
      ( "entangle",
        [ Alcotest.test_case "components" `Quick test_entangle_components ] );
      ( "phase",
        [ Alcotest.test_case "mergeable" `Quick test_phase_mergeable ] );
      ( "analyze",
        [ Alcotest.test_case "summary" `Quick test_analyze_summary ] );
      ( "validate",
        [
          Alcotest.test_case "identity clean" `Quick test_validate_identity;
          Alcotest.test_case "clifford.mismatch" `Quick
            test_validate_clifford_mismatch;
          Alcotest.test_case "live.mismatch" `Quick test_validate_live_mismatch;
        ] );
      ( "broken-pass",
        [
          Alcotest.test_case "evil X caught" `Quick test_evil_pass_caught;
          Alcotest.test_case "measure drop caught" `Quick
            test_measure_dropper_caught;
          Alcotest.test_case "shape misses it" `Quick
            test_shape_misses_semantic_break;
        ] );
      ( "matrix",
        [ Alcotest.test_case "deep validation clean" `Slow test_deep_matrix ] );
    ]
