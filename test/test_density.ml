(* Density-matrix backend tests: channel algebra, agreement with the pure
   statevector on noiseless circuits, and — the key check — quantitative
   agreement between the exact runner and the Monte-Carlo trajectory
   runner under the same noise model. *)

module G = Ir.Gate
module Circuit = Ir.Circuit
module Machines = Device.Machines
module Pipeline = Triq.Pipeline
module Density = Sim.Density
module Sv = Sim.Statevector

let circuit n gates = Circuit.create n gates

(* ---------- State algebra ---------- *)

let test_density_init () =
  let rho = Density.init 2 in
  Alcotest.(check (float 1e-12)) "trace" 1.0 (Density.trace rho);
  Alcotest.(check (float 1e-12)) "pure" 1.0 (Density.purity rho);
  Alcotest.(check (float 1e-12)) "all mass on 00" 1.0 (Density.populations rho).(0)

let test_density_matches_statevector () =
  (* Noiseless evolution must equal |psi><psi| of the statevector run. *)
  let c =
    circuit 3
      [ G.One (G.H, 0); G.Two (G.Cnot, 0, 1); G.One (G.T, 2); G.Two (G.Cz, 1, 2);
        G.One (G.Rx 0.7, 0) ]
  in
  let sv = Sv.run c in
  let rho = Density.init 3 in
  List.iter (Density.apply_gate rho) c.Circuit.gates;
  let pops = Density.populations rho in
  for i = 0 to 7 do
    Alcotest.(check (float 1e-9))
      (Printf.sprintf "population %d" i)
      (Sv.probability sv i) pops.(i)
  done;
  Alcotest.(check (float 1e-9)) "still pure" 1.0 (Density.purity rho)

let test_density_unitarity_preserves_trace () =
  let rho = Density.init 2 in
  Density.apply_gate rho (G.One (G.H, 0));
  Density.apply_gate rho (G.Two (G.Cnot, 0, 1));
  Alcotest.(check (float 1e-12)) "trace" 1.0 (Density.trace rho)

(* ---------- Channels ---------- *)

let test_depolarize_full_mixes () =
  (* p = 1 one-qubit depolarizing on |0> gives populations 2/3 * .. :
     rho -> 1/3 (X rho X + Y rho Y + Z rho Z); on |0><0| that is
     1/3 (|1><1| + |1><1| + |0><0|) = diag(1/3, 2/3). *)
  let rho = Density.init 1 in
  Density.depolarize_one rho 1.0 0;
  let pops = Density.populations rho in
  Alcotest.(check (float 1e-9)) "p0" (1.0 /. 3.0) pops.(0);
  Alcotest.(check (float 1e-9)) "p1" (2.0 /. 3.0) pops.(1);
  Alcotest.(check (float 1e-9)) "trace kept" 1.0 (Density.trace rho)

let test_depolarize_reduces_purity () =
  let rho = Density.init 2 in
  Density.apply_gate rho (G.One (G.H, 0));
  Density.depolarize_one rho 0.2 0;
  let purity = Density.purity rho in
  Alcotest.(check bool) (Printf.sprintf "purity %f < 1" purity) true (purity < 0.999);
  Alcotest.(check (float 1e-9)) "trace kept" 1.0 (Density.trace rho)

let test_dephase_kills_coherence_not_populations () =
  let rho = Density.init 1 in
  Density.apply_gate rho (G.One (G.H, 0));
  Density.dephase rho 0.5 0;
  (* Full dephasing at p = 1/2 gives the maximally mixed diagonal. *)
  let pops = Density.populations rho in
  Alcotest.(check (float 1e-9)) "p0" 0.5 pops.(0);
  Alcotest.(check (float 1e-9)) "p1" 0.5 pops.(1);
  Alcotest.(check (float 1e-9)) "fully mixed" 0.5 (Density.purity rho)

let test_amplitude_damping () =
  (* gamma = 1 relaxes |1> to |0> completely. *)
  let rho = Density.init 1 in
  Density.apply_gate rho (G.One (G.X, 0));
  Density.amplitude_damp rho 1.0 0;
  Alcotest.(check (float 1e-9)) "relaxed" 1.0 (Density.populations rho).(0);
  (* Partial damping moves the right amount of population. *)
  let rho = Density.init 1 in
  Density.apply_gate rho (G.One (G.X, 0));
  Density.amplitude_damp rho 0.3 0;
  Alcotest.(check (float 1e-9)) "partial" 0.3 (Density.populations rho).(0);
  Alcotest.(check (float 1e-9)) "trace kept" 1.0 (Density.trace rho)

let test_two_q_depolarize_trace () =
  let rho = Density.init 2 in
  Density.apply_gate rho (G.One (G.H, 0));
  Density.apply_gate rho (G.Two (G.Cnot, 0, 1));
  Density.depolarize_two rho 0.15 0 1;
  Alcotest.(check (float 1e-9)) "trace" 1.0 (Density.trace rho);
  Alcotest.(check bool) "mixed" true (Density.purity rho < 1.0)

let test_channel_probability_validation () =
  let rho = Density.init 1 in
  Alcotest.(check bool) "p > 1 rejected" true
    (try Density.depolarize_one rho 1.5 0; false with Invalid_argument _ -> true)

(* ---------- Exact runner vs Monte-Carlo runner ---------- *)

let cross_validate name machine (p : Bench_kit.Programs.t) =
  let compiled =
    Pipeline.to_compiled
      (Pipeline.compile_level machine p.Bench_kit.Programs.circuit ~level:Pipeline.OneQOptCN)
  in
  let exact = Sim.Density_runner.run compiled p.Bench_kit.Programs.spec in
  let sampled =
    Sim.Runner.simulate ~config:(Sim.Runner.Config.make ~trajectories:3000 ()) compiled p.Bench_kit.Programs.spec
  in
  let diff = Float.abs (exact.Sim.Density_runner.success_rate -. sampled.Sim.Runner.success_rate) in
  if diff > 0.03 then
    Alcotest.failf "%s: exact %.4f vs sampled %.4f (diff %.4f)" name
      exact.Sim.Density_runner.success_rate sampled.Sim.Runner.success_rate diff

let test_runner_cross_validation_umd () =
  cross_validate "toffoli/umdti" Machines.umdti Bench_kit.Programs.toffoli;
  cross_validate "hs4/umdti" Machines.umdti (Bench_kit.Programs.hidden_shift 4)

let test_runner_cross_validation_ibm () =
  cross_validate "bv4/ibmq5" Machines.ibmq5 (Bench_kit.Programs.bv 4);
  cross_validate "peres/ibmq5" Machines.ibmq5 Bench_kit.Programs.peres

let test_runner_cross_validation_rigetti () =
  cross_validate "hs2/agave" Machines.agave (Bench_kit.Programs.hidden_shift 2)

let test_dist_metrics () =
  let a = [ ("00", 0.5); ("11", 0.5) ] in
  Alcotest.(check (float 1e-12)) "identical tvd" 0.0 (Sim.Dist.total_variation a a);
  Alcotest.(check (float 1e-12)) "identical hellinger" 0.0 (Sim.Dist.hellinger a a);
  let b = [ ("01", 1.0) ] in
  Alcotest.(check (float 1e-12)) "disjoint tvd" 1.0 (Sim.Dist.total_variation a b);
  Alcotest.(check (float 1e-9)) "disjoint hellinger" 1.0 (Sim.Dist.hellinger a b);
  let c = [ ("00", 0.75); ("11", 0.25) ] in
  Alcotest.(check (float 1e-12)) "partial tvd" 0.25 (Sim.Dist.total_variation a c)

let test_full_distribution_cross_validation () =
  (* Beyond matching success rates, the sampled and exact output
     distributions must be close in total variation. *)
  List.iter
    (fun (machine, (p : Bench_kit.Programs.t)) ->
      let compiled =
        Pipeline.to_compiled
          (Pipeline.compile_level machine p.Bench_kit.Programs.circuit
             ~level:Pipeline.OneQOptCN)
      in
      let exact = Sim.Density_runner.run compiled p.Bench_kit.Programs.spec in
      let sampled =
        Sim.Runner.simulate ~config:(Sim.Runner.Config.make ~trajectories:3000 ()) compiled p.Bench_kit.Programs.spec
      in
      let tvd =
        Sim.Dist.total_variation exact.Sim.Density_runner.distribution
          sampled.Sim.Runner.distribution
      in
      if tvd > 0.04 then
        Alcotest.failf "%s/%s: tvd %.4f" machine.Device.Machine.name
          p.Bench_kit.Programs.name tvd)
    [
      (Machines.umdti, Bench_kit.Programs.toffoli);
      (Machines.ibmq5, Bench_kit.Programs.bv 4);
      (Machines.agave, Bench_kit.Programs.hidden_shift 2);
    ]

let test_exact_distribution_sums_to_one () =
  let p = Bench_kit.Programs.toffoli in
  let compiled =
    Pipeline.to_compiled
      (Pipeline.compile_level Machines.umdti p.Bench_kit.Programs.circuit
         ~level:Pipeline.OneQOptCN)
  in
  let exact = Sim.Density_runner.run compiled p.Bench_kit.Programs.spec in
  let total =
    List.fold_left (fun acc (_, pr) -> acc +. pr) 0.0 exact.Sim.Density_runner.distribution
  in
  Alcotest.(check (float 1e-3)) "normalized" 1.0 total;
  Alcotest.(check bool) "purity sane" true
    (exact.Sim.Density_runner.purity <= 1.0 +. 1e-9
    && exact.Sim.Density_runner.purity > 0.0)

let test_t1_mode_cross_validation () =
  (* With explicit relaxation, trajectory sampling (quantum jumps) must
     agree with the exact Kraus evolution. *)
  List.iter
    (fun (machine, (p : Bench_kit.Programs.t)) ->
      let compiled =
        Pipeline.to_compiled
          (Pipeline.compile_level machine p.Bench_kit.Programs.circuit
             ~level:Pipeline.OneQOptCN)
      in
      let exact =
        Sim.Density_runner.run ~explicit_t1:true compiled p.Bench_kit.Programs.spec
      in
      let sampled =
        Sim.Runner.simulate ~config:(Sim.Runner.Config.make ~explicit_t1:true ~trajectories:3000 ()) compiled
          p.Bench_kit.Programs.spec
      in
      let diff =
        Float.abs
          (exact.Sim.Density_runner.success_rate -. sampled.Sim.Runner.success_rate)
      in
      if diff > 0.03 then
        Alcotest.failf "%s/%s (t1): exact %.4f vs sampled %.4f"
          machine.Device.Machine.name p.Bench_kit.Programs.name
          exact.Sim.Density_runner.success_rate sampled.Sim.Runner.success_rate)
    [ (Machines.ibmq5, Bench_kit.Programs.bv 4); (Machines.agave, Bench_kit.Programs.hidden_shift 2) ]

let test_t1_relaxation_behaviour () =
  (* A jump drives toward |0>: preparing |1> and relaxing fully must
     land on |0>. *)
  let rng = Mathkit.Rng.create 4 in
  let s = Sim.Statevector.init 1 in
  Sim.Statevector.apply_one s (Ir.Matrices.one_q Ir.Gate.X) 0;
  Alcotest.(check (float 1e-12)) "excited" 1.0 (Sim.Statevector.excited_population s 0);
  let jumped = Sim.Statevector.relax s 0 ~gamma:1.0 rng in
  Alcotest.(check bool) "jumped" true jumped;
  Alcotest.(check (float 1e-12)) "relaxed" 0.0 (Sim.Statevector.excited_population s 0);
  Alcotest.(check (float 1e-9)) "normalized" 1.0 (Sim.Statevector.norm2 s);
  (* Quantum-jump average matches the channel: relax |1> many times at
     gamma = 0.3 and average the excited population. *)
  let acc = ref 0.0 in
  let n = 20_000 in
  for _ = 1 to n do
    let s = Sim.Statevector.init 1 in
    Sim.Statevector.apply_one s (Ir.Matrices.one_q Ir.Gate.X) 0;
    ignore (Sim.Statevector.relax s 0 ~gamma:0.3 rng);
    acc := !acc +. Sim.Statevector.excited_population s 0
  done;
  let mean = !acc /. float_of_int n in
  if Float.abs (mean -. 0.7) > 0.01 then Alcotest.failf "jump average %.4f" mean

let test_t1_model_choice_similar () =
  (* The folded-depolarizing approximation and the explicit channel agree
     on success to within a few points (the model ablation's claim). *)
  let p = Bench_kit.Programs.bv 4 in
  let compiled =
    Pipeline.to_compiled
      (Pipeline.compile_level Machines.ibmq5 p.Bench_kit.Programs.circuit
         ~level:Pipeline.OneQOptCN)
  in
  let folded = (Sim.Density_runner.run compiled p.Bench_kit.Programs.spec).Sim.Density_runner.success_rate in
  let explicit =
    (Sim.Density_runner.run ~explicit_t1:true compiled p.Bench_kit.Programs.spec)
      .Sim.Density_runner.success_rate
  in
  if Float.abs (folded -. explicit) > 0.08 then
    Alcotest.failf "models diverge: folded %.3f vs explicit %.3f" folded explicit

let test_exact_runner_rejects_large () =
  let p = Bench_kit.Programs.bv 8 in
  let compiled =
    Pipeline.to_compiled
      (Pipeline.compile_level Machines.ibmq16 p.Bench_kit.Programs.circuit
         ~level:Pipeline.N)
  in
  (* BV8 at level N touches many qubits through swap chains; if it exceeds
     the exact-backend limit the runner must refuse rather than blow up. *)
  match Sim.Density_runner.run compiled p.Bench_kit.Programs.spec with
  | _ -> ()
  | exception Invalid_argument _ -> ()

let () =
  Alcotest.run "density"
    [
      ( "state",
        [
          Alcotest.test_case "init" `Quick test_density_init;
          Alcotest.test_case "matches statevector" `Quick test_density_matches_statevector;
          Alcotest.test_case "trace preserved" `Quick test_density_unitarity_preserves_trace;
        ] );
      ( "channels",
        [
          Alcotest.test_case "full depolarize" `Quick test_depolarize_full_mixes;
          Alcotest.test_case "purity drops" `Quick test_depolarize_reduces_purity;
          Alcotest.test_case "dephasing" `Quick test_dephase_kills_coherence_not_populations;
          Alcotest.test_case "amplitude damping" `Quick test_amplitude_damping;
          Alcotest.test_case "2q depolarize" `Quick test_two_q_depolarize_trace;
          Alcotest.test_case "validation" `Quick test_channel_probability_validation;
        ] );
      ( "cross-validation",
        [
          Alcotest.test_case "umd" `Slow test_runner_cross_validation_umd;
          Alcotest.test_case "ibm" `Slow test_runner_cross_validation_ibm;
          Alcotest.test_case "rigetti" `Slow test_runner_cross_validation_rigetti;
          Alcotest.test_case "dist metrics" `Quick test_dist_metrics;
          Alcotest.test_case "full distribution" `Slow test_full_distribution_cross_validation;
          Alcotest.test_case "normalization" `Quick test_exact_distribution_sums_to_one;
          Alcotest.test_case "size guard" `Quick test_exact_runner_rejects_large;
          Alcotest.test_case "t1 cross-validation" `Slow test_t1_mode_cross_validation;
          Alcotest.test_case "t1 jump behaviour" `Quick test_t1_relaxation_behaviour;
          Alcotest.test_case "t1 model ablation" `Quick test_t1_model_choice_similar;
        ] );
    ]
