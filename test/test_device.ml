(* Device-layer tests: topology graphs, gate-set visibility and pulse
   accounting, calibration drift model, and the seven study machines. *)

module Topology = Device.Topology
module Gateset = Device.Gateset
module Calibration = Device.Calibration
module Machine = Device.Machine
module Machines = Device.Machines
module G = Ir.Gate
module Circuit = Ir.Circuit

(* ---------- Topology ---------- *)

let test_topology_line () =
  let t = Topology.line 4 in
  Alcotest.(check int) "edges" 3 (Topology.edge_count t);
  Alcotest.(check bool) "coupled" true (Topology.coupled t 1 2);
  Alcotest.(check bool) "not coupled" false (Topology.coupled t 0 3);
  Alcotest.(check int) "distance" 3 (Topology.hop_distance t 0 3);
  Alcotest.(check (list int)) "path" [ 0; 1; 2; 3 ] (Topology.shortest_path t 0 3)

let test_topology_ring () =
  let t = Topology.ring 8 in
  Alcotest.(check int) "edges" 8 (Topology.edge_count t);
  Alcotest.(check int) "wraps" 1 (Topology.hop_distance t 0 7);
  Alcotest.(check int) "across" 4 (Topology.hop_distance t 0 4)

let test_topology_grid () =
  let t = Topology.grid 2 4 in
  Alcotest.(check int) "qubits" 8 (Topology.n_qubits t);
  Alcotest.(check int) "edges" 10 (Topology.edge_count t);
  Alcotest.(check bool) "vertical" true (Topology.coupled t 0 4);
  Alcotest.(check bool) "no diagonal" false (Topology.coupled t 0 5)

let test_topology_fully_connected () =
  let t = Topology.fully_connected 5 in
  Alcotest.(check int) "edges" 10 (Topology.edge_count t);
  Alcotest.(check bool) "flag" true (Topology.is_fully_connected t);
  Alcotest.(check bool) "line is not" false (Topology.is_fully_connected (Topology.line 3))

let test_topology_directed () =
  let t = Topology.create 2 [ (1, 0) ] ~directed:true in
  Alcotest.(check bool) "directed edge" true (Topology.has_directed_edge t 1 0);
  Alcotest.(check bool) "reverse missing" false (Topology.has_directed_edge t 0 1);
  Alcotest.(check bool) "coupled both ways" true (Topology.coupled t 0 1)

let test_topology_validation () =
  let raises f = try f (); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "self loop" true
    (raises (fun () -> ignore (Topology.create 2 [ (0, 0) ] ~directed:false)));
  Alcotest.(check bool) "duplicate" true
    (raises (fun () -> ignore (Topology.create 2 [ (0, 1); (1, 0) ] ~directed:false)));
  Alcotest.(check bool) "out of range" true
    (raises (fun () -> ignore (Topology.create 2 [ (0, 5) ] ~directed:false)))

let test_topology_neighbors_sorted () =
  let t = Topology.create 4 [ (2, 0); (2, 3); (2, 1) ] ~directed:false in
  Alcotest.(check (list int)) "sorted" [ 0; 1; 3 ] (Topology.neighbors t 2);
  Alcotest.(check int) "degree" 3 (Topology.degree t 2)

let test_topology_disconnected () =
  let t = Topology.create 4 [ (0, 1); (2, 3) ] ~directed:false in
  Alcotest.(check bool) "not connected" false (Topology.is_connected t);
  Alcotest.(check bool) "distance raises" true
    (try ignore (Topology.hop_distance t 0 3); false with Not_found -> true)

let test_topology_heavy_hex () =
  let t = Topology.heavy_hex 3 in
  Alcotest.(check int) "qubits" 14 (Topology.n_qubits t);
  Alcotest.(check bool) "connected" true (Topology.is_connected t);
  for q = 0 to Topology.n_qubits t - 1 do
    if Topology.degree t q > 3 then Alcotest.failf "degree %d at %d" (Topology.degree t q) q
  done;
  Alcotest.(check bool) "validation" true
    (try ignore (Topology.heavy_hex 0); false with Invalid_argument _ -> true)

let test_topology_metrics () =
  let line = Topology.line 5 in
  Alcotest.(check int) "line diameter" 4 (Topology.diameter line);
  Alcotest.(check (float 1e-9)) "pair average" 2.0 (Topology.average_distance line);
  Alcotest.(check int) "full graph diameter" 1
    (Topology.diameter (Topology.fully_connected 4));
  (* Richer connectivity means smaller average distance: the Figure 12
     topology story in one number. *)
  Alcotest.(check bool) "full < line" true
    (Topology.average_distance (Topology.fully_connected 5)
    < Topology.average_distance (Topology.line 5))

(* ---------- Gateset ---------- *)

let test_gateset_visibility () =
  Alcotest.(check bool) "ibm u3" true
    (Gateset.one_q_visible Gateset.Ibm_visible (G.U3 (0.1, 0.2, 0.3)));
  Alcotest.(check bool) "ibm h invisible" false
    (Gateset.one_q_visible Gateset.Ibm_visible G.H);
  Alcotest.(check bool) "rigetti rx half pi" true
    (Gateset.one_q_visible Gateset.Rigetti_visible (G.Rx (Float.pi /. 2.0)));
  Alcotest.(check bool) "rigetti rx other" false
    (Gateset.one_q_visible Gateset.Rigetti_visible (G.Rx 0.3));
  Alcotest.(check bool) "umd rxy" true
    (Gateset.one_q_visible Gateset.Umd_visible (G.Rxy (0.3, 0.4)));
  Alcotest.(check bool) "cnot ibm" true (Gateset.two_q_visible Gateset.Ibm_visible G.Cnot);
  Alcotest.(check bool) "cz not ibm" false (Gateset.two_q_visible Gateset.Ibm_visible G.Cz);
  Alcotest.(check bool) "xx quarter pi" true
    (Gateset.two_q_visible Gateset.Umd_visible (G.Xx (Float.pi /. 4.0)));
  Alcotest.(check bool) "xx other angle" false
    (Gateset.two_q_visible Gateset.Umd_visible (G.Xx 0.3))

let test_gateset_error_free () =
  Alcotest.(check bool) "ibm u1" true (Gateset.is_error_free Gateset.Ibm_visible (G.U1 0.5));
  Alcotest.(check bool) "ibm u2" false
    (Gateset.is_error_free Gateset.Ibm_visible (G.U2 (0.5, 0.2)));
  Alcotest.(check bool) "rigetti rz" true
    (Gateset.is_error_free Gateset.Rigetti_visible (G.Rz 0.5));
  Alcotest.(check bool) "umd rz" true (Gateset.is_error_free Gateset.Umd_visible (G.Rz 0.5))

let test_gateset_pulse_counts () =
  Alcotest.(check int) "u1" 0 (Gateset.native_pulse_count Gateset.Ibm_visible (G.U1 0.5));
  Alcotest.(check int) "u2" 1
    (Gateset.native_pulse_count Gateset.Ibm_visible (G.U2 (0.5, 0.1)));
  Alcotest.(check int) "u3" 2
    (Gateset.native_pulse_count Gateset.Ibm_visible (G.U3 (0.5, 0.1, 0.2)));
  Alcotest.(check int) "rigetti rx" 1
    (Gateset.native_pulse_count Gateset.Rigetti_visible (G.Rx (Float.pi /. 2.0)));
  Alcotest.(check int) "umd rxy" 1
    (Gateset.native_pulse_count Gateset.Umd_visible (G.Rxy (0.5, 0.1)));
  Alcotest.(check bool) "invisible raises" true
    (try ignore (Gateset.native_pulse_count Gateset.Ibm_visible G.H); false
     with Invalid_argument _ -> true)

let test_gateset_circuit_pulse_count () =
  let c =
    Circuit.create 2
      [ G.One (G.U1 0.1, 0); G.One (G.U3 (1.0, 0.0, 0.0), 1); G.Two (G.Cnot, 0, 1);
        G.Measure 0 ]
  in
  Alcotest.(check int) "total" 2 (Gateset.circuit_pulse_count Gateset.Ibm_visible c)

(* ---------- Calibration ---------- *)

let test_calibration_deterministic () =
  let topo = Topology.line 4 in
  let profile = Machines.ibmq14.Machine.profile in
  let a = Calibration.generate ~seed:1 ~day:3 topo profile in
  let b = Calibration.generate ~seed:1 ~day:3 topo profile in
  Alcotest.(check bool) "same snapshot" true
    (a.Calibration.one_q = b.Calibration.one_q
    && a.Calibration.two_q = b.Calibration.two_q)

let test_calibration_day_varies () =
  let topo = Topology.line 4 in
  let profile = Machines.ibmq14.Machine.profile in
  let a = Calibration.generate ~seed:1 ~day:0 topo profile in
  let b = Calibration.generate ~seed:1 ~day:1 topo profile in
  Alcotest.(check bool) "days differ" true
    (Calibration.two_q_err a 0 1 <> Calibration.two_q_err b 0 1)

let test_calibration_clamped () =
  let topo = Topology.line 4 in
  let profile = Machines.agave.Machine.profile in
  List.iter
    (fun day ->
      let cal = Calibration.generate ~seed:9 ~day topo profile in
      List.iter
        (fun (_, e) ->
          if e < 0.0 || e > 0.5 then Alcotest.failf "error out of range: %f" e)
        cal.Calibration.two_q)
    (List.init 50 (fun d -> d))

let test_calibration_mean_tracks_profile () =
  (* Averaged over many days/edges the drifted rates must stay within a
     factor ~1.5 of the profile average (log-normal bias tolerated). *)
  let topo = Topology.fully_connected 5 in
  let profile = Machines.umdti.Machine.profile in
  let all =
    List.concat_map
      (fun day ->
        let cal = Calibration.generate ~seed:4 ~day topo profile in
        List.map snd cal.Calibration.two_q)
      (List.init 100 (fun d -> d))
  in
  let mean = Mathkit.Stats.mean all in
  let ratio = mean /. profile.Calibration.avg_two_q_err in
  if ratio < 0.66 || ratio > 1.5 then Alcotest.failf "drift bias: %f" ratio

let test_calibration_superconducting_varies_more () =
  let spread profile =
    let topo = Topology.line 8 in
    let all =
      List.concat_map
        (fun day ->
          let cal = Calibration.generate ~seed:2 ~day topo profile in
          List.map snd cal.Calibration.two_q)
        (List.init 30 (fun d -> d))
    in
    Mathkit.Stats.maximum all /. Mathkit.Stats.minimum all
  in
  let sc = spread Machines.ibmq14.Machine.profile in
  let ion = spread Machines.umdti.Machine.profile in
  Alcotest.(check bool)
    (Printf.sprintf "sc %.1fx > ion %.1fx" sc ion)
    true (sc > ion);
  (* The paper reports up to 9x for superconducting 2Q errors. *)
  Alcotest.(check bool) (Printf.sprintf "sc spread %.1fx > 3x" sc) true (sc > 3.0)

let test_calibration_explicit_validation () =
  Alcotest.(check bool) "error > 1 rejected" true
    (try
       ignore
         (Calibration.explicit ~day:0 ~one_q:[| 1.5 |] ~two_q:[] ~readout:[| 0.0 |]);
       false
     with Invalid_argument _ -> true)

let test_calibration_missing_edge () =
  let cal =
    Calibration.explicit ~day:0 ~one_q:(Array.make 3 0.01)
      ~two_q:[ ((0, 1), 0.05) ]
      ~readout:(Array.make 3 0.01)
  in
  Alcotest.(check bool) "raises" true
    (try ignore (Calibration.two_q_err cal 1 2); false with Not_found -> true);
  (* Symmetric lookup. *)
  Alcotest.(check (float 1e-12)) "reversed pair" 0.05 (Calibration.two_q_err cal 1 0)

(* ---------- Machines ---------- *)

let test_machines_inventory () =
  Alcotest.(check int) "seven machines" 7 (List.length Machines.all);
  let expect name qubits couplings =
    match Machines.find name with
    | None -> Alcotest.failf "missing machine %s" name
    | Some m ->
      Alcotest.(check int) (name ^ " qubits") qubits (Machine.n_qubits m);
      Alcotest.(check int)
        (name ^ " couplings")
        couplings
        (Topology.edge_count m.Machine.topology)
  in
  (* Figure 1's qubit and 2Q-coupling counts. *)
  expect "IBMQ5" 5 6;
  expect "IBMQ14" 14 18;
  expect "IBMQ16" 16 22;
  expect "Agave" 4 3;
  expect "Aspen1" 16 18;
  expect "Aspen3" 16 18;
  expect "UMDTI" 5 10

let test_machines_connected () =
  List.iter
    (fun m ->
      if not (Topology.is_connected m.Machine.topology) then
        Alcotest.failf "%s disconnected" m.Machine.name)
    Machines.all

let test_machines_umdti_fully_connected () =
  Alcotest.(check bool) "fully connected" true
    (Topology.is_fully_connected Machines.umdti.Machine.topology)

let test_machines_vendors () =
  Alcotest.(check string) "ibm" "IBM" (Gateset.vendor_name (Machine.vendor Machines.ibmq5));
  Alcotest.(check string) "rigetti" "Rigetti"
    (Gateset.vendor_name (Machine.vendor Machines.aspen1));
  Alcotest.(check string) "umd" "UMD" (Gateset.vendor_name (Machine.vendor Machines.umdti))

let test_machines_find_case_insensitive () =
  Alcotest.(check bool) "lowercase" true (Machines.find "ibmq14" <> None);
  Alcotest.(check bool) "unknown" true (Machines.find "nonesuch" = None)

let test_machines_fits () =
  let c5 = Circuit.empty 5 and c6 = Circuit.empty 6 in
  Alcotest.(check bool) "5 fits" true (Machine.fits Machines.ibmq5 c5);
  Alcotest.(check bool) "6 does not" false (Machine.fits Machines.ibmq5 c6)

let test_machines_duration () =
  let c =
    Circuit.create 2 [ G.One (G.H, 0); G.Two (G.Cnot, 0, 1); G.One (G.H, 1) ]
  in
  let ibm = Machine.duration_us Machines.ibmq5 c in
  let umd = Machine.duration_us Machines.umdti c in
  Alcotest.(check bool) "positive" true (ibm > 0.0);
  Alcotest.(check bool) "ion slower clock" true (umd > ibm)

let test_machines_extended () =
  Alcotest.(check int) "tokyo qubits" 20 (Machine.n_qubits Machines.ibmq20);
  Alcotest.(check int) "tokyo couplings" 43
    (Topology.edge_count Machines.ibmq20.Machine.topology);
  Alcotest.(check bool) "tokyo connected" true
    (Topology.is_connected Machines.ibmq20.Machine.topology);
  Alcotest.(check int) "agave8 ring" 8
    (Topology.edge_count Machines.agave_full.Machine.topology);
  (* find resolves extended machines, but they stay out of [all]. *)
  Alcotest.(check bool) "find ibmq20" true (Machines.find "ibmq20" <> None);
  Alcotest.(check int) "all stays 7" 7 (List.length Machines.all)

let test_machines_example_8q () =
  Alcotest.(check int) "10 edges" 10
    (Topology.edge_count Machines.example_8q.Machine.topology);
  (* Edge 2-6 has reliability 0.7 in Figure 6, i.e. error 0.3. *)
  Alcotest.(check (float 1e-12)) "edge error" 0.3
    (Calibration.two_q_err Machines.example_8q_calibration 2 6);
  Alcotest.(check int) "bristlecone 72" 72
    (Machine.n_qubits (Machines.bristlecone 6 12))

(* ---------- Json / Machine_io ---------- *)

module Json = Device.Json
module Machine_io = Device.Machine_io

let test_json_roundtrip () =
  let doc =
    Json.Object
      [
        ("a", Json.Number 1.5);
        ("b", Json.Array [ Json.Bool true; Json.Null; Json.String "x\"y" ]);
        ("c", Json.Object [ ("nested", Json.Number 3.0) ]);
      ]
  in
  let text = Json.to_string doc in
  Alcotest.(check bool) "roundtrip" true (Json.parse text = doc);
  (* Compact form too. *)
  Alcotest.(check bool) "compact roundtrip" true
    (Json.parse (Json.to_string ~indent:0 doc) = doc)

let test_json_parse_basics () =
  Alcotest.(check bool) "number" true (Json.parse "42" = Json.Number 42.0);
  Alcotest.(check bool) "negative float" true (Json.parse "-2.5e1" = Json.Number (-25.0));
  Alcotest.(check bool) "escapes" true (Json.parse {|"a\nb"|} = Json.String "a\nb");
  Alcotest.(check bool) "empty containers" true
    (Json.parse "[{}, []]" = Json.Array [ Json.Object []; Json.Array [] ])

let test_json_parse_errors () =
  let raises s = try ignore (Json.parse s); false with Json.Parse_error _ -> true in
  Alcotest.(check bool) "trailing" true (raises "1 2");
  Alcotest.(check bool) "unterminated string" true (raises {|"abc|});
  Alcotest.(check bool) "bad literal" true (raises "nul");
  Alcotest.(check bool) "unclosed array" true (raises "[1, 2")

let test_json_accessors () =
  let doc = Json.parse {|{"x": 3, "s": "hi", "flag": false, "l": [1]}|} in
  Alcotest.(check int) "int" 3 (Json.to_int (Json.member "x" doc));
  Alcotest.(check string) "string" "hi" (Json.to_str (Json.member "s" doc));
  Alcotest.(check bool) "bool" false (Json.to_bool (Json.member "flag" doc));
  Alcotest.(check int) "list" 1 (List.length (Json.to_list (Json.member "l" doc)));
  Alcotest.(check bool) "missing member" true
    (try ignore (Json.member "nope" doc); false with Invalid_argument _ -> true);
  Alcotest.(check bool) "member_opt" true (Json.member_opt "nope" doc = None)

let test_machine_io_roundtrip_all () =
  List.iter
    (fun m ->
      let m' = Machine_io.of_string (Machine_io.to_string m) in
      Alcotest.(check string) "name" m.Machine.name m'.Machine.name;
      Alcotest.(check int) "qubits" (Machine.n_qubits m) (Machine.n_qubits m');
      Alcotest.(check bool) "edges" true
        (Topology.edges m.Machine.topology = Topology.edges m'.Machine.topology);
      Alcotest.(check bool) "directed" true
        (Topology.directed m.Machine.topology = Topology.directed m'.Machine.topology);
      Alcotest.(check (float 1e-12)) "2q err"
        m.Machine.profile.Calibration.avg_two_q_err
        m'.Machine.profile.Calibration.avg_two_q_err;
      (* Calibration histories must be identical (same seed). *)
      let c = Machine.calibration m ~day:3 and c' = Machine.calibration m' ~day:3 in
      Alcotest.(check bool) "same calibration" true
        (c.Calibration.two_q = c'.Calibration.two_q))
    Machines.all

let test_machine_io_validation () =
  let raises s = try ignore (Machine_io.of_string s); false with Machine_io.Error _ -> true in
  Alcotest.(check bool) "bad json" true (raises "{");
  Alcotest.(check bool) "missing fields" true (raises "{}");
  Alcotest.(check bool) "bad interface" true
    (raises
       {|{"name":"x","interface":"dwave","qubits":2,"edges":[[0,1]],
          "profile":{"one_q_err":0.01,"two_q_err":0.02,"readout_err":0.03,
          "coherence_us":10,"one_q_time_us":0.1,"two_q_time_us":0.2,
          "spatial_sigma":0.1,"temporal_sigma":0.1}}|});
  Alcotest.(check bool) "error rate over 1" true
    (raises
       {|{"name":"x","interface":"ibm","qubits":2,"edges":[[0,1]],
          "profile":{"one_q_err":1.5,"two_q_err":0.02,"readout_err":0.03,
          "coherence_us":10,"one_q_time_us":0.1,"two_q_time_us":0.2,
          "spatial_sigma":0.1,"temporal_sigma":0.1}}|});
  Alcotest.(check bool) "disconnected topology" true
    (raises
       {|{"name":"x","interface":"ibm","qubits":4,"edges":[[0,1]],
          "profile":{"one_q_err":0.01,"two_q_err":0.02,"readout_err":0.03,
          "coherence_us":10,"one_q_time_us":0.1,"two_q_time_us":0.2,
          "spatial_sigma":0.1,"temporal_sigma":0.1}}|})

let test_machine_io_usable_for_compilation () =
  (* A machine loaded from JSON drives the full pipeline. *)
  let m = Machine_io.of_string (Machine_io.to_string Machines.agave) in
  let p = Circuit.measure_all
      (Circuit.create 2 [ G.One (G.H, 0); G.Two (G.Cnot, 0, 1) ]) [ 0; 1 ] in
  let compiled = Triq.Pipeline.compile_level m p ~level:Triq.Pipeline.OneQOptCN in
  Alcotest.(check bool) "compiles" true (compiled.Triq.Pipeline.two_q_count > 0)

(* qcheck: random ring machines roundtrip through JSON exactly. *)
let machine_gen =
  QCheck.Gen.(
    map3
      (fun n two_q seed ->
        Machine.create
          ~name:(Printf.sprintf "Rand%d" n)
          ~basis:Gateset.Rigetti_visible ~topology:(Topology.ring n)
          ~profile:
            {
              Calibration.avg_one_q_err = 0.002;
              avg_two_q_err = two_q;
              avg_readout_err = 0.03;
              coherence_us = 25.0;
              one_q_time_us = 0.05;
              two_q_time_us = 0.25;
              spatial_sigma = 0.4;
              temporal_sigma = 0.2;
              two_q_scale = None;
            }
          ~seed)
      (int_range 3 12)
      (float_range 0.005 0.2)
      (int_range 1 100000))

let prop_machine_io_roundtrip =
  QCheck.Test.make ~count:100 ~name:"random machines roundtrip through JSON"
    (QCheck.make machine_gen) (fun m ->
      let m' = Machine_io.of_string (Machine_io.to_string m) in
      Machine.n_qubits m = Machine.n_qubits m'
      && Topology.edges m.Machine.topology = Topology.edges m'.Machine.topology
      && Machine.calibration m ~day:2 = Machine.calibration m' ~day:2)

let qcheck_cases = List.map QCheck_alcotest.to_alcotest [ prop_machine_io_roundtrip ]

let () =
  Alcotest.run "device"
    [
      ( "topology",
        [
          Alcotest.test_case "line" `Quick test_topology_line;
          Alcotest.test_case "ring" `Quick test_topology_ring;
          Alcotest.test_case "grid" `Quick test_topology_grid;
          Alcotest.test_case "fully connected" `Quick test_topology_fully_connected;
          Alcotest.test_case "directed" `Quick test_topology_directed;
          Alcotest.test_case "validation" `Quick test_topology_validation;
          Alcotest.test_case "neighbors" `Quick test_topology_neighbors_sorted;
          Alcotest.test_case "disconnected" `Quick test_topology_disconnected;
          Alcotest.test_case "heavy hex" `Quick test_topology_heavy_hex;
          Alcotest.test_case "metrics" `Quick test_topology_metrics;
        ] );
      ( "gateset",
        [
          Alcotest.test_case "visibility" `Quick test_gateset_visibility;
          Alcotest.test_case "error free" `Quick test_gateset_error_free;
          Alcotest.test_case "pulse counts" `Quick test_gateset_pulse_counts;
          Alcotest.test_case "circuit pulses" `Quick test_gateset_circuit_pulse_count;
        ] );
      ( "calibration",
        [
          Alcotest.test_case "deterministic" `Quick test_calibration_deterministic;
          Alcotest.test_case "daily drift" `Quick test_calibration_day_varies;
          Alcotest.test_case "clamped" `Quick test_calibration_clamped;
          Alcotest.test_case "mean tracks profile" `Quick
            test_calibration_mean_tracks_profile;
          Alcotest.test_case "sc varies more" `Quick
            test_calibration_superconducting_varies_more;
          Alcotest.test_case "explicit validation" `Quick
            test_calibration_explicit_validation;
          Alcotest.test_case "edge lookup" `Quick test_calibration_missing_edge;
        ] );
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "parse basics" `Quick test_json_parse_basics;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
          Alcotest.test_case "accessors" `Quick test_json_accessors;
        ] );
      ( "machine_io",
        [
          Alcotest.test_case "roundtrip all machines" `Quick test_machine_io_roundtrip_all;
          Alcotest.test_case "validation" `Quick test_machine_io_validation;
          Alcotest.test_case "usable for compilation" `Quick
            test_machine_io_usable_for_compilation;
        ] );
      ( "machines",
        [
          Alcotest.test_case "inventory (fig 1)" `Quick test_machines_inventory;
          Alcotest.test_case "connected" `Quick test_machines_connected;
          Alcotest.test_case "umdti full" `Quick test_machines_umdti_fully_connected;
          Alcotest.test_case "vendors" `Quick test_machines_vendors;
          Alcotest.test_case "find" `Quick test_machines_find_case_insensitive;
          Alcotest.test_case "fits" `Quick test_machines_fits;
          Alcotest.test_case "duration" `Quick test_machines_duration;
          Alcotest.test_case "extended inventory" `Quick test_machines_extended;
          Alcotest.test_case "example 8q" `Quick test_machines_example_8q;
        ] );
      ("properties", qcheck_cases);
    ]
