(* Tests for the extension features: ASCII circuit drawing, peephole
   cancellation, the product mapping objective, the distance-dependent
   large ion trap, and the extension experiments. *)

(* The legacy Mapper/Mapper_smt wrappers are exercised on purpose: these
   tests pin the wrappers' golden equivalence with the layout engine. *)
[@@@alert "-deprecated"]

module G = Ir.Gate
module Circuit = Ir.Circuit
module Mat = Ir.Matrices
module M = Mathkit.Matrix
module Rng = Mathkit.Rng
module Machines = Device.Machines
module Machine = Device.Machine
module Calibration = Device.Calibration
module Mapper = Triq.Mapper
module Peephole = Triq.Peephole
module Pipeline = Triq.Pipeline
module Experiments = Bench_kit.Experiments

let circuit n gates = Circuit.create n gates

let contains hay needle =
  let h = String.length hay and n = String.length needle in
  let rec scan i = i + n <= h && (String.sub hay i n = needle || scan (i + 1)) in
  n = 0 || scan 0

(* ---------- Draw ---------- *)

let test_draw_wires () =
  let text = Ir.Draw.render (circuit 2 [ G.One (G.H, 0); G.Two (G.Cnot, 0, 1) ]) in
  Alcotest.(check int) "two lines" 2
    (List.length (List.filter (fun l -> l <> "") (String.split_on_char '\n' text)));
  Alcotest.(check bool) "labels" true (contains text "q0" && contains text "q1");
  Alcotest.(check bool) "hadamard box" true (contains text "[H]");
  Alcotest.(check bool) "control dot" true (contains text "*");
  Alcotest.(check bool) "target" true (contains text "X")

let test_draw_connector () =
  (* CNOT between non-adjacent wires draws a vertical bar on the wire in
     between. *)
  let text = Ir.Draw.render (circuit 3 [ G.Two (G.Cnot, 0, 2) ]) in
  let lines = String.split_on_char '\n' text in
  Alcotest.(check bool) "bar on middle wire" true (contains (List.nth lines 1) "|")

let test_draw_measure_and_labels () =
  let text =
    Ir.Draw.render ~wire_labels:[ "cin"; "a" ] (circuit 2 [ G.Measure 0; G.Measure 1 ])
  in
  Alcotest.(check bool) "labels used" true (contains text "cin" && contains text "a");
  Alcotest.(check bool) "measure marks" true (contains text "M");
  Alcotest.(check bool) "wrong label count" true
    (try ignore (Ir.Draw.render ~wire_labels:[ "x" ] (circuit 2 [])); false
     with Invalid_argument _ -> true)

let test_draw_layering () =
  (* Parallel gates share one column: total width of a 4-H layer equals
     width of a single H column. *)
  let wide = Ir.Draw.render (circuit 4 (List.init 4 (fun q -> G.One (G.H, q)))) in
  let serial = Ir.Draw.render (circuit 1 (List.init 4 (fun _ -> G.One (G.H, 0)))) in
  let line s = List.hd (String.split_on_char '\n' s) in
  Alcotest.(check bool) "parallel narrower than serial" true
    (String.length (line wide) < String.length (line serial))

(* ---------- Peephole ---------- *)

let test_peephole_cancels_adjacent () =
  let c = circuit 2 [ G.Two (G.Cnot, 0, 1); G.Two (G.Cnot, 0, 1) ] in
  Alcotest.(check int) "both gone" 0 (Circuit.gate_count (Peephole.cancel_two_q c))

let test_peephole_keeps_oriented_pairs () =
  (* CNOT a,b then CNOT b,a do NOT cancel. *)
  let c = circuit 2 [ G.Two (G.Cnot, 0, 1); G.Two (G.Cnot, 1, 0) ] in
  Alcotest.(check int) "kept" 2 (Circuit.gate_count (Peephole.cancel_two_q c))

let test_peephole_cz_symmetric () =
  let c = circuit 2 [ G.Two (G.Cz, 0, 1); G.Two (G.Cz, 1, 0) ] in
  Alcotest.(check int) "cz cancels either orientation" 0
    (Circuit.gate_count (Peephole.cancel_two_q c))

let test_peephole_blocked_by_one_q () =
  let c =
    circuit 2 [ G.Two (G.Cnot, 0, 1); G.One (G.H, 1); G.Two (G.Cnot, 0, 1) ]
  in
  Alcotest.(check int) "blocked" 3 (Circuit.gate_count (Peephole.cancel_two_q c))

let test_peephole_commutes_past_disjoint () =
  (* A disjoint gate between the pair must not block cancellation. *)
  let c =
    circuit 4 [ G.Two (G.Cnot, 0, 1); G.Two (G.Cnot, 2, 3); G.Two (G.Cnot, 0, 1) ]
  in
  Alcotest.(check int) "cancelled around disjoint gate" 1
    (Circuit.two_q_count (Peephole.cancel_two_q c))

let test_peephole_preserves_unitary () =
  let rng = Rng.create 77 in
  for _ = 1 to 40 do
    let n = 3 in
    let len = 2 + Rng.int rng 12 in
    let gates =
      List.init len (fun _ ->
          let a = Rng.int rng n in
          let b = (a + 1 + Rng.int rng (n - 1)) mod n in
          match Rng.int rng 4 with
          | 0 -> G.Two (G.Cnot, a, b)
          | 1 -> G.Two (G.Cz, a, b)
          | 2 -> G.Two (G.Swap, a, b)
          | _ -> G.One (G.T, a))
    in
    let c = circuit n gates in
    let opt = Peephole.cancel_two_q c in
    if
      not
        (M.proportional ~eps:1e-8 (Mat.circuit_unitary c) (Mat.circuit_unitary opt))
    then Alcotest.fail "peephole changed semantics"
  done

let test_peephole_pipeline_integration () =
  (* With peephole on, the pipeline's output must stay semantically equal
     and never use more 2Q gates. *)
  let p = Bench_kit.Programs.peres in
  let without =
    Pipeline.compile_level Machines.ibmq14 p.Bench_kit.Programs.circuit
      ~level:Pipeline.OneQOptCN
  in
  let with_ =
    Pipeline.compile_level ~config:(Triq.Pass.Config.make ~peephole:true ())
      Machines.ibmq14 p.Bench_kit.Programs.circuit
      ~level:Pipeline.OneQOptCN
  in
  Alcotest.(check bool) "not worse" true
    (with_.Pipeline.two_q_count <= without.Pipeline.two_q_count);
  let outcome =
    Sim.Runner.simulate ~config:(Sim.Runner.Config.make ~trajectories:150 ()) (Pipeline.to_compiled with_)
      p.Bench_kit.Programs.spec
  in
  Alcotest.(check bool) "still correct" true outcome.Sim.Runner.dominant_correct

(* ---------- Product objective ---------- *)

let fig6_reliability () =
  Triq.Reliability.of_calibration ~noise_aware:true
    Machines.example_8q.Machine.topology Machines.example_8q_calibration

let test_product_objective_valid () =
  let r = fig6_reliability () in
  let c =
    circuit 3 [ G.Two (G.Cnot, 0, 1); G.Two (G.Cnot, 1, 2); G.Measure 0 ]
  in
  let result = Mapper.solve ~objective:Mapper.Product r c in
  let placed = List.sort_uniq compare (Array.to_list result.Mapper.placement) in
  Alcotest.(check int) "injective" 3 (List.length placed);
  Alcotest.(check bool) "optimal" true result.Mapper.optimal

let test_product_maximizes_product () =
  (* The product solution must have log-product >= the max-min solution's
     (it optimizes exactly that). *)
  let r = fig6_reliability () in
  let c =
    circuit 4
      [ G.Two (G.Cnot, 0, 1); G.Two (G.Cnot, 1, 2); G.Two (G.Cnot, 2, 3);
        G.Two (G.Cnot, 3, 0) ]
  in
  let mm = Mapper.solve ~objective:Mapper.Max_min r c in
  let pr = Mapper.solve ~objective:Mapper.Product r c in
  let _, log_mm = Mapper.evaluate r c mm.Mapper.placement in
  let _, log_pr = Mapper.evaluate r c pr.Mapper.placement in
  Alcotest.(check bool) "product wins its own game" true (log_pr >= log_mm -. 1e-9);
  (* ... and max-min wins its own game. *)
  let min_mm, _ = Mapper.evaluate r c mm.Mapper.placement in
  let min_pr, _ = Mapper.evaluate r c pr.Mapper.placement in
  Alcotest.(check bool) "max-min wins its own game" true (min_mm >= min_pr -. 1e-9)

let test_max_min_prunes_better () =
  (* The paper's scalability argument: on the larger device, max-min
     explores no more nodes than product for the same exact search. *)
  let machine = Machines.ibmq16 in
  let reliability =
    Triq.Reliability.compute ~noise_aware:true machine
      (Machine.calibration machine ~day:0)
  in
  let flat = Ir.Decompose.flatten (Bench_kit.Programs.bv 6).Bench_kit.Programs.circuit in
  let mm = Mapper.solve ~objective:Mapper.Max_min reliability flat in
  let pr = Mapper.solve ~objective:Mapper.Product reliability flat in
  Alcotest.(check bool)
    (Printf.sprintf "maxmin %d <= product %d nodes" mm.Mapper.nodes_explored
       pr.Mapper.nodes_explored)
    true
    (mm.Mapper.nodes_explored <= pr.Mapper.nodes_explored)

(* ---------- Large ion trap ---------- *)

let test_ion_trap_chain_distance_errors () =
  let machine = Machines.ion_trap_chain 13 in
  Alcotest.(check int) "13 ions" 13 (Machine.n_qubits machine);
  Alcotest.(check bool) "fully connected" true
    (Device.Topology.is_fully_connected machine.Machine.topology);
  (* Averaged over days, far pairs must be worse than near pairs. *)
  let avg_err a b =
    Mathkit.Stats.mean
      (List.init 30 (fun day ->
           Calibration.two_q_err (Machine.calibration machine ~day) a b))
  in
  let near = avg_err 0 1 and far = avg_err 0 12 in
  Alcotest.(check bool)
    (Printf.sprintf "far %.3f > 2x near %.3f" far near)
    true
    (far > 2.0 *. near);
  Alcotest.(check bool) "validation" true
    (try ignore (Machines.ion_trap_chain 2); false with Invalid_argument _ -> true)

let test_ion_trap_noise_adaptivity_matters_more () =
  (* Section 6.3's projection: the CN-over-C gain on the 13-ion trap must
     exceed the gain on the 5-ion UMDTI for a 2Q-heavy program. *)
  let p = Bench_kit.Sequences.toffoli 4 in
  let gain machine =
    let s level =
      let compiled =
        Pipeline.compile_level machine p.Bench_kit.Programs.circuit ~level
      in
      (Sim.Runner.simulate ~config:(Sim.Runner.Config.make ~trajectories:200 ()) (Pipeline.to_compiled compiled)
         p.Bench_kit.Programs.spec).Sim.Runner.success_rate
    in
    s Pipeline.OneQOptCN /. s Pipeline.OneQOptC
  in
  let small = gain Machines.umdti in
  let large = gain (Machines.ion_trap_chain 13) in
  Alcotest.(check bool)
    (Printf.sprintf "large trap gain %.2f > small %.2f - 0.05" large small)
    true
    (large > small -. 0.05);
  Alcotest.(check bool) (Printf.sprintf "large gain %.2f material" large) true
    (large > 1.1)

(* ---------- Lookahead router ---------- *)

let test_lookahead_preserves_semantics () =
  List.iter
    (fun machine ->
      List.iter
        (fun (p : Bench_kit.Programs.t) ->
          if Machine.fits machine p.Bench_kit.Programs.circuit then begin
            let compiled =
              Pipeline.to_compiled
                (Pipeline.compile_level
                   ~config:
                     (Triq.Pass.Config.make ~router:Triq.Pass.Config.Lookahead ())
                   machine p.Bench_kit.Programs.circuit ~level:Pipeline.OneQOptCN)
            in
            let result =
              Sim.Verify.check_spec p.Bench_kit.Programs.spec
                ~program:p.Bench_kit.Programs.circuit compiled
            in
            if not result.Sim.Verify.equivalent then
              Alcotest.failf "%s/%s: lookahead routing changed semantics"
                machine.Machine.name p.Bench_kit.Programs.name
          end)
        [ Bench_kit.Programs.bv 6; Bench_kit.Programs.adder; Bench_kit.Programs.qft 4 ])
    [ Machines.ibmq14; Machines.ibmq16; Machines.aspen1 ]

let test_lookahead_not_worse_on_2q () =
  (* Over the benchmark suite the lookahead router must not increase
     geomean 2Q counts. *)
  let machine = Machines.ibmq14 in
  let ratios =
    List.filter_map
      (fun (p : Bench_kit.Programs.t) ->
        if not (Machine.fits machine p.Bench_kit.Programs.circuit) then None
        else begin
          let count router =
            (Pipeline.compile_level ~config:(Triq.Pass.Config.make ~router ())
               machine p.Bench_kit.Programs.circuit ~level:Pipeline.OneQOptCN)
              .Pipeline.two_q_count
          in
          Some
            ( float_of_int (count Triq.Pass.Config.Default),
              float_of_int (count Triq.Pass.Config.Lookahead) )
        end)
      Bench_kit.Programs.all
  in
  let geo = Mathkit.Stats.geomean_ratio ratios in
  Alcotest.(check bool) (Printf.sprintf "geomean 2q ratio %.3f >= 1" geo) true
    (geo >= 0.999)

(* ---------- Parametric iSWAP interface ---------- *)

let test_parametric_semantics () =
  List.iter
    (fun (p : Bench_kit.Programs.t) ->
      let compiled =
        Pipeline.to_compiled
          (Pipeline.compile_level Machines.aspen1_parametric p.Bench_kit.Programs.circuit
             ~level:Pipeline.OneQOptCN)
      in
      Alcotest.(check bool) (p.Bench_kit.Programs.name ^ " visible") true
        (Device.Gateset.circuit_visible Device.Gateset.Rigetti_parametric_visible
           compiled.Triq.Compiled.hardware);
      let result =
        Sim.Verify.check_spec p.Bench_kit.Programs.spec
          ~program:p.Bench_kit.Programs.circuit compiled
      in
      if not result.Sim.Verify.equivalent then
        Alcotest.failf "%s: parametric compilation changed semantics"
          p.Bench_kit.Programs.name)
    [ Bench_kit.Programs.bv 6; Bench_kit.Programs.fredkin; Bench_kit.Programs.qft 4 ]

let test_parametric_fewer_two_q () =
  (* Swap-heavy programs must use at most as many 2Q interactions. *)
  let p = Bench_kit.Programs.bv 8 in
  let count machine =
    (Pipeline.compile_level machine p.Bench_kit.Programs.circuit ~level:Pipeline.OneQOptCN)
      .Pipeline.two_q_count
  in
  let plain = count Machines.aspen1 and parametric = count Machines.aspen1_parametric in
  Alcotest.(check bool)
    (Printf.sprintf "parametric %d < plain %d" parametric plain)
    true (parametric < plain)

let test_parametric_quil_roundtrip () =
  let p = Bench_kit.Programs.bv 6 in
  let compiled =
    Pipeline.to_compiled
      (Pipeline.compile_level Machines.aspen1_parametric p.Bench_kit.Programs.circuit
         ~level:Pipeline.OneQOptCN)
  in
  let text = Backend.Quil_emit.emit compiled in
  let contains needle =
    let h = String.length text and n = String.length needle in
    let rec scan i = i + n <= h && (String.sub text i n = needle || scan (i + 1)) in
    scan 0
  in
  Alcotest.(check bool) "emits ISWAP" true (contains "ISWAP ");
  let parsed = Backend.Quil_parse.parse text in
  Alcotest.(check bool) "roundtrip gates" true
    (List.for_all2 G.equal compiled.Triq.Compiled.hardware.Circuit.gates
       parsed.Backend.Quil_parse.circuit.Circuit.gates)

let test_parametric_machine_io () =
  let m' =
    Device.Machine_io.of_string (Device.Machine_io.to_string Machines.aspen1_parametric)
  in
  Alcotest.(check bool) "interface preserved" true
    (m'.Machine.basis = Device.Gateset.Rigetti_parametric_visible)

(* ---------- Extension experiments ---------- *)

let test_ablation_mapper_shape () =
  let data = Experiments.ablation_mapper_data ~node_budget:50_000 () in
  Alcotest.(check int) "12 benchmarks" 12 (List.length data);
  List.iter
    (fun (bench, (mm : Mapper.result), (pr : Mapper.result), (smt : Mapper.result)) ->
      if mm.Mapper.objective +. 1e-9 < pr.Mapper.objective then
        Alcotest.failf "%s: max-min lost its own objective" bench;
      (* The SAT engine is exact: when B&B finished within budget the two
         must agree on the objective. *)
      if mm.Mapper.optimal && Float.abs (mm.Mapper.objective -. smt.Mapper.objective) > 1e-9
      then
        Alcotest.failf "%s: smt %.4f disagrees with exact b&b %.4f" bench
          smt.Mapper.objective mm.Mapper.objective)
    data

let test_ablation_peephole_shape () =
  List.iter
    (fun (bench, without, with_) ->
      if with_ > without then Alcotest.failf "%s: peephole added gates" bench)
    (Experiments.ablation_peephole_data ())

let test_staleness_shape () =
  let data = Experiments.staleness_data ~trajectories:150 ~days:5 () in
  Alcotest.(check int) "five days" 5 (List.length data);
  (* On the compile day itself stale = fresh by construction. *)
  (match data with
  | (0, stale, fresh) :: _ ->
    Alcotest.(check (float 1e-9)) "day 0 identical" stale fresh
  | _ -> Alcotest.fail "day 0 missing");
  (* Recompilation must not lose on average. *)
  let stale = Mathkit.Stats.mean (List.map (fun (_, s, _) -> s) data) in
  let fresh = Mathkit.Stats.mean (List.map (fun (_, _, f) -> f) data) in
  Alcotest.(check bool)
    (Printf.sprintf "fresh %.3f >= stale %.3f - 0.03" fresh stale)
    true
    (fresh >= stale -. 0.03)

let test_parametric_experiment_shape () =
  let data = Experiments.parametric_data ~trajectories:100 () in
  Alcotest.(check int) "12 benchmarks" 12 (List.length data);
  List.iter
    (fun (_, bench, c2, _, p2, _) ->
      if p2 > c2 then Alcotest.failf "%s: parametric used more 2Q" bench)
    data

let test_noise_model_shape () =
  let data = Experiments.noise_model_data ~trajectories:150 () in
  List.iter
    (fun (bench, folded, explicit) ->
      if Float.abs (folded -. explicit) > 0.12 then
        Alcotest.failf "%s: models diverge (%.2f vs %.2f)" bench folded explicit)
    data

let test_variability_shape () =
  let data = Experiments.variability_data ~trajectories:100 ~days:4 () in
  Alcotest.(check int) "three machines" 3 (List.length data);
  List.iter
    (fun (name, series) ->
      Alcotest.(check int) (name ^ " days") 4 (List.length series);
      List.iter
        (fun s -> if s <= 0.0 || s > 1.0 then Alcotest.failf "%s: rate %f" name s)
        series)
    data

let test_heavyhex_shape () =
  let rows = Experiments.heavyhex_data ~trajectories:100 () in
  Alcotest.(check bool) "nonempty" true (rows <> []);
  List.iter
    (fun (r : float Experiments.row) ->
      Alcotest.(check int) "two series" 2 (List.length r.Experiments.values))
    rows

let test_ghz_fidelity_shape () =
  let data = Experiments.ghz_data ~trajectories:150 () in
  Alcotest.(check int) "seven machines" 7 (List.length data);
  List.iter
    (fun (name, f) ->
      if f < 0.0 || f > 1.0 +. 1e-6 then Alcotest.failf "%s: fidelity %f" name f)
    data;
  (* The ion trap certifies entanglement comfortably; Agave does not. *)
  Alcotest.(check bool) "umdti > 0.9" true (List.assoc "UMDTI" data > 0.9);
  Alcotest.(check bool) "umdti best" true
    (List.for_all (fun (_, f) -> List.assoc "UMDTI" data >= f -. 1e-9) data)

let test_tannu_shape () =
  let data = Experiments.tannu_data ~trajectories:100 () in
  Alcotest.(check int) "six days" 6 (List.length data);
  let triq = List.map (fun (_, t, _) -> t) data in
  Alcotest.(check bool) "stable and high" true
    (Mathkit.Stats.minimum triq > 0.5)

let () =
  Alcotest.run "extensions"
    [
      ( "draw",
        [
          Alcotest.test_case "wires" `Quick test_draw_wires;
          Alcotest.test_case "connector" `Quick test_draw_connector;
          Alcotest.test_case "measure and labels" `Quick test_draw_measure_and_labels;
          Alcotest.test_case "layering" `Quick test_draw_layering;
        ] );
      ( "peephole",
        [
          Alcotest.test_case "cancels adjacent" `Quick test_peephole_cancels_adjacent;
          Alcotest.test_case "orientation matters" `Quick test_peephole_keeps_oriented_pairs;
          Alcotest.test_case "cz symmetric" `Quick test_peephole_cz_symmetric;
          Alcotest.test_case "blocked by 1q" `Quick test_peephole_blocked_by_one_q;
          Alcotest.test_case "commutes past disjoint" `Quick
            test_peephole_commutes_past_disjoint;
          Alcotest.test_case "preserves unitary" `Quick test_peephole_preserves_unitary;
          Alcotest.test_case "pipeline integration" `Quick
            test_peephole_pipeline_integration;
        ] );
      ( "product objective",
        [
          Alcotest.test_case "valid placement" `Quick test_product_objective_valid;
          Alcotest.test_case "each wins its game" `Quick test_product_maximizes_product;
          Alcotest.test_case "max-min prunes better" `Quick test_max_min_prunes_better;
        ] );
      ( "ion trap",
        [
          Alcotest.test_case "distance errors" `Quick test_ion_trap_chain_distance_errors;
          Alcotest.test_case "adaptivity matters more" `Slow
            test_ion_trap_noise_adaptivity_matters_more;
        ] );
      ( "lookahead router",
        [
          Alcotest.test_case "preserves semantics" `Quick test_lookahead_preserves_semantics;
          Alcotest.test_case "not worse on 2q" `Quick test_lookahead_not_worse_on_2q;
        ] );
      ( "parametric iswap",
        [
          Alcotest.test_case "semantics" `Quick test_parametric_semantics;
          Alcotest.test_case "fewer 2q" `Quick test_parametric_fewer_two_q;
          Alcotest.test_case "quil roundtrip" `Quick test_parametric_quil_roundtrip;
          Alcotest.test_case "machine io" `Quick test_parametric_machine_io;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "ablation mapper" `Quick test_ablation_mapper_shape;
          Alcotest.test_case "ablation peephole" `Quick test_ablation_peephole_shape;
          Alcotest.test_case "staleness" `Slow test_staleness_shape;
          Alcotest.test_case "tannu six days" `Quick test_tannu_shape;
          Alcotest.test_case "parametric shape" `Slow test_parametric_experiment_shape;
          Alcotest.test_case "noise model shape" `Slow test_noise_model_shape;
          Alcotest.test_case "variability shape" `Quick test_variability_shape;
          Alcotest.test_case "heavy-hex shape" `Slow test_heavyhex_shape;
          Alcotest.test_case "ghz fidelity" `Slow test_ghz_fidelity_shape;
        ] );
    ]
