(* End-to-end integration tests.

   The central invariant: for every benchmark, machine and compiler in the
   study, the compiled hardware circuit executed noiselessly produces
   exactly the program's ideal output distribution (compilation preserves
   semantics); and executed noisily, the correct answer still dominates on
   the low-noise machine. Also covers Scaffold -> compile -> emit ->
   re-parse round trips. *)

module Programs = Bench_kit.Programs
module Machines = Device.Machines
module Machine = Device.Machine
module Pipeline = Triq.Pipeline
module Circuit = Ir.Circuit

(* Noiseless oracle, via the library's translation validator. *)
let check_semantics name (compiled : Triq.Compiled.t) (p : Programs.t) =
  let result =
    Sim.Verify.check_spec p.Programs.spec ~program:p.Programs.circuit compiled
  in
  if not result.Sim.Verify.equivalent then
    Alcotest.failf "%s: compiled circuit changed the program's output (tvd %.6f)"
      name result.Sim.Verify.total_variation

let semantic_machines =
  [ Machines.ibmq5; Machines.ibmq14; Machines.agave; Machines.aspen1; Machines.umdti ]

let semantic_benchmarks () =
  [ Programs.bv 4; Programs.hidden_shift 4; Programs.toffoli; Programs.adder ]

let test_triq_semantics_all_levels () =
  List.iter
    (fun machine ->
      List.iter
        (fun (p : Programs.t) ->
          if Machine.fits machine p.Programs.circuit then
            List.iter
              (fun level ->
                let compiled =
                  Pipeline.to_compiled (Pipeline.compile_level machine p.Programs.circuit ~level)
                in
                check_semantics
                  (Printf.sprintf "%s/%s/%s" machine.Machine.name p.Programs.name
                     (Pipeline.level_name level))
                  compiled p)
              Pipeline.all_levels)
        (semantic_benchmarks ()))
    semantic_machines

let test_triq_semantics_across_days () =
  (* Noise-aware compilation changes placements day to day; semantics must
     not change. *)
  let machine = Machines.ibmq14 in
  let p = Programs.hidden_shift 4 in
  List.iter
    (fun day ->
      let compiled =
        Pipeline.to_compiled
          (Pipeline.compile_level ~config:(Triq.Pass.Config.make ~day ())
             machine p.Programs.circuit ~level:Pipeline.OneQOptCN)
      in
      check_semantics (Printf.sprintf "day %d" day) compiled p)
    [ 0; 3; 7; 11 ]

let test_baseline_semantics () =
  let p = Programs.bv 4 in
  check_semantics "qiskit/ibmq14"
    (Baselines.Qiskit_like.compile Machines.ibmq14 p.Programs.circuit)
    p;
  check_semantics "quil/agave"
    (Baselines.Quil_like.compile Machines.agave p.Programs.circuit)
    p;
  check_semantics "zulehner/ibmq16"
    (Baselines.Zulehner_like.compile Machines.ibmq16 p.Programs.circuit)
    p

let test_sequences_semantics_on_umd () =
  List.iter
    (fun k ->
      let p = Bench_kit.Sequences.fredkin k in
      let compiled =
        Pipeline.to_compiled
          (Pipeline.compile_level Machines.umdti p.Programs.circuit ~level:Pipeline.OneQOptCN)
      in
      check_semantics (Printf.sprintf "fredkin-x%d" k) compiled p)
    [ 1; 2; 3 ]

(* Scaffold source -> compile -> execute, end to end. *)
let test_scaffold_to_execution () =
  let source =
    {|
      module main() {
        qbit q[3];
        X(q[0]);
        X(q[1]);
        Toffoli(q[0], q[1], q[2]);
        measure(q);
      }
    |}
  in
  let program = Scaffold.Lower.compile_string source in
  let spec = Ir.Spec.deterministic program.Scaffold.Lower.measured "111" in
  List.iter
    (fun machine ->
      let compiled =
        Pipeline.to_compiled
          (Pipeline.compile_level machine program.Scaffold.Lower.circuit
             ~level:Pipeline.OneQOptCN)
      in
      let outcome = Sim.Runner.simulate ~config:(Sim.Runner.Config.make ~trajectories:150 ()) compiled spec in
      if not outcome.Sim.Runner.dominant_correct then
        Alcotest.failf "%s: wrong answer dominates" machine.Machine.name)
    [ Machines.ibmq5; Machines.umdti ]

(* Scaffold -> QASM -> parse -> same unitary. *)
let test_scaffold_qasm_roundtrip () =
  let source =
    {|
      module main() {
        qbit q[2];
        H(q[0]);
        CNOT(q[0], q[1]);
        measure(q);
      }
    |}
  in
  let program = Scaffold.Lower.compile_string source in
  let compiled =
    Pipeline.to_compiled
      (Pipeline.compile_level Machines.ibmq5 program.Scaffold.Lower.circuit
         ~level:Pipeline.OneQOptCN)
  in
  let text = Backend.Qasm_emit.emit compiled in
  let parsed = Backend.Qasm_parse.parse text in
  Alcotest.(check bool) "roundtrip equal" true
    (Circuit.equal compiled.Triq.Compiled.hardware parsed.Backend.Qasm_parse.circuit)

(* Dominance under noise for all 12 benchmarks on the low-noise machine:
   none of them should fail outright on UMDTI (Figure 9b's observation). *)
let test_umdti_never_fails () =
  List.iter
    (fun (p : Programs.t) ->
      if Machine.fits Machines.umdti p.Programs.circuit then begin
        let compiled =
          Pipeline.to_compiled
            (Pipeline.compile_level Machines.umdti p.Programs.circuit
               ~level:Pipeline.OneQOptCN)
        in
        let outcome = Sim.Runner.simulate ~config:(Sim.Runner.Config.make ~trajectories:150 ()) compiled p.Programs.spec in
        if not outcome.Sim.Runner.dominant_correct then
          Alcotest.failf "%s failed on UMDTI" p.Programs.name;
        if outcome.Sim.Runner.success_rate < 0.5 then
          Alcotest.failf "%s success %.2f < 0.5 on UMDTI" p.Programs.name
            outcome.Sim.Runner.success_rate
      end)
    Programs.all

(* The ESP estimate must be correlated with measured success: for compiled
   variants of the same benchmark on the same machine, higher ESP should
   not give dramatically lower success. *)
let test_esp_tracks_success () =
  let machine = Machines.ibmq14 in
  let p = Programs.bv 6 in
  let variants =
    List.map
      (fun level -> Pipeline.to_compiled (Pipeline.compile_level machine p.Programs.circuit ~level))
      Pipeline.all_levels
  in
  let scored =
    List.map
      (fun c ->
        ( c.Triq.Compiled.esp,
          (Sim.Runner.simulate ~config:(Sim.Runner.Config.make ~trajectories:200 ()) c p.Programs.spec).Sim.Runner.success_rate ))
      variants
  in
  List.iter
    (fun (esp1, s1) ->
      List.iter
        (fun (esp2, s2) ->
          if esp1 > esp2 +. 0.2 && s1 < s2 -. 0.1 then
            Alcotest.failf "ESP ordering violated: (%.2f,%.2f) vs (%.2f,%.2f)" esp1 s1
              esp2 s2)
        scored)
    scored

(* qcheck: compilation preserves semantics on random programs. *)

let random_program_gen =
  QCheck.Gen.(
    let n = 3 in
    let gate =
      oneof
        [
          map2 (fun q theta -> Ir.Gate.One (Ir.Gate.Rz theta, q)) (int_range 0 (n - 1))
            (float_range 0.0 6.28);
          map (fun q -> Ir.Gate.One (Ir.Gate.H, q)) (int_range 0 (n - 1));
          map (fun q -> Ir.Gate.One (Ir.Gate.T, q)) (int_range 0 (n - 1));
          map2
            (fun a d -> Ir.Gate.Two (Ir.Gate.Cnot, a, (a + 1 + d) mod n))
            (int_range 0 (n - 1)) (int_range 0 (n - 2));
          map2
            (fun a d -> Ir.Gate.Two (Ir.Gate.Cz, a, (a + 1 + d) mod n))
            (int_range 0 (n - 1)) (int_range 0 (n - 2));
        ]
    in
    map
      (fun gates ->
        Circuit.measure_all (Circuit.create n gates) [ 0; 1; 2 ])
      (list_size (int_range 1 15) gate))

(* Random machines: ring devices of random size and error profile. *)
let random_machine_gen =
  QCheck.Gen.(
    map3
      (fun n two_q seed ->
        Device.Machine.create
          ~name:(Printf.sprintf "RandRing%d" n)
          ~basis:Device.Gateset.Rigetti_visible
          ~topology:(Device.Topology.ring n)
          ~profile:
            {
              Device.Calibration.avg_one_q_err = 0.002;
              avg_two_q_err = two_q;
              avg_readout_err = 0.03;
              coherence_us = 25.0;
              one_q_time_us = 0.05;
              two_q_time_us = 0.25;
              spatial_sigma = 0.4;
              temporal_sigma = 0.2;
              two_q_scale = None;
            }
          ~seed)
      (int_range 3 9)
      (float_range 0.01 0.15)
      (int_range 1 100000))

let prop_compile_on_random_machines =
  QCheck.Test.make ~count:30
    ~name:"compile preserves semantics (random machines)"
    (QCheck.make random_machine_gen) (fun machine ->
      let program = (Bench_kit.Programs.toffoli).Programs.circuit in
      let compiled =
        Pipeline.to_compiled
          (Pipeline.compile_level machine program ~level:Pipeline.OneQOptCN)
      in
      let result =
        Sim.Verify.check ~program ~measured:[ 0; 1; 2 ] compiled
      in
      result.Sim.Verify.equivalent)

let prop_compile_preserves_semantics =
  QCheck.Test.make ~count:40 ~name:"compile preserves semantics (random programs)"
    (QCheck.make random_program_gen) (fun program ->
      let measured = [ 0; 1; 2 ] in
      let program_ideal =
        Sim.Runner.ideal_distribution (Circuit.body program) ~measured
      in
      List.for_all
        (fun (machine, level) ->
          let compiled =
            Pipeline.to_compiled (Pipeline.compile_level machine program ~level)
          in
          let hw, mapping = Circuit.compact compiled.Triq.Compiled.hardware in
          let measured_hw =
            List.map
              (fun p ->
                List.assoc (List.assoc p compiled.Triq.Compiled.readout_map) mapping)
              measured
          in
          let compiled_ideal =
            Sim.Runner.ideal_distribution (Circuit.body hw) ~measured:measured_hw
          in
          Sim.Dist.total_variation program_ideal compiled_ideal < 1e-6)
        [
          (Machines.ibmq5, Pipeline.OneQOptCN);
          (Machines.agave, Pipeline.OneQOptC);
          (Machines.umdti, Pipeline.OneQOpt);
          (Machines.ibmq14, Pipeline.N);
        ])

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_compile_preserves_semantics; prop_compile_on_random_machines ]

let () =
  Alcotest.run "integration"
    [
      ( "semantics",
        [
          Alcotest.test_case "all machines x levels" `Slow test_triq_semantics_all_levels;
          Alcotest.test_case "across days" `Quick test_triq_semantics_across_days;
          Alcotest.test_case "baselines" `Quick test_baseline_semantics;
          Alcotest.test_case "umd sequences" `Quick test_sequences_semantics_on_umd;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "scaffold to execution" `Quick test_scaffold_to_execution;
          Alcotest.test_case "scaffold qasm roundtrip" `Quick test_scaffold_qasm_roundtrip;
          Alcotest.test_case "umdti never fails" `Slow test_umdti_never_fails;
          Alcotest.test_case "esp tracks success" `Slow test_esp_tracks_success;
        ] );
      ("properties", qcheck_cases);
    ]
