(* Layout-engine tests: golden bit-identity of the compiled artifact
   against the pre-refactor fixture, canonical-form behaviour, cache
   semantics, portfolio determinism across pool sizes, and the
   structured-report / compat-wrapper contract. *)

(* The legacy Mapper/Mapper_smt wrappers are exercised on purpose: these
   tests pin the wrappers' equivalence with the layout engine. *)
[@@@alert "-deprecated"]

module Machine = Device.Machine
module Machines = Device.Machines
module Programs = Bench_kit.Programs
module Circuit = Ir.Circuit
module G = Ir.Gate
module Report = Layout.Report
module Canon = Layout.Canon
module Cache = Layout.Cache

let reliability_for machine =
  Triq.Reliability.compute ~noise_aware:true machine (Machine.calibration machine ~day:0)

(* ---------- Golden bit-identity ---------- *)

(* Same digest as test/gen_golden: every output-relevant field of the
   compiled artifact, but not timing or search-effort metadata. *)
let digest (r : Triq.Pipeline.t) =
  let payload =
    ( r.Triq.Pipeline.hardware.Ir.Circuit.gates,
      r.Triq.Pipeline.hardware.Ir.Circuit.n_qubits,
      r.Triq.Pipeline.initial_placement,
      r.Triq.Pipeline.final_placement,
      r.Triq.Pipeline.readout_map,
      r.Triq.Pipeline.swap_count,
      r.Triq.Pipeline.two_q_count,
      r.Triq.Pipeline.pulse_count,
      r.Triq.Pipeline.flipped_cnots,
      r.Triq.Pipeline.esp )
  in
  Digest.to_hex (Digest.string (Marshal.to_string payload []))

let machine_by_name name = List.find (fun m -> m.Machine.name = name) Machines.all
let program_by_name name = List.find (fun p -> p.Programs.name = name) Programs.all

let level_of_string_exn s =
  match Triq.Pipeline.level_of_string s with
  | Some l -> l
  | None -> Alcotest.failf "unknown level %S" s

let test_golden_bit_identity () =
  (* Every bundled benchmark x machine x level must compile to exactly the
     artifact the pre-refactor pipeline produced (digests pinned in
     layout_golden.ml before the layout engine existed). The matrix runs
     twice: the first sweep exercises cold solves (cache misses), the
     second the cache-hit path, which must reproduce the same placements
     bit-for-bit after canonical-permutation translation. *)
  Triq.Placement.cache_clear ();
  Alcotest.(check bool) "fixture is non-trivial" true
    (List.length Layout_golden.entries > 100);
  for round = 1 to 2 do
    List.iter
      (fun (machine, program, level, expected) ->
        let m = machine_by_name machine in
        let p = program_by_name program in
        let r =
          Triq.Pipeline.compile_level m p.Programs.circuit
            ~level:(level_of_string_exn level)
        in
        let got = digest r in
        if got <> expected then
          Alcotest.failf "round %d: %s/%s/%s: digest %s, expected %s" round
            machine program level got expected)
      Layout_golden.entries
  done

(* ---------- Canonical forms ---------- *)

let relabel_pairs perm pairs =
  List.map (fun ((a, b), c) -> ((perm.(a), perm.(b)), c)) pairs

let test_canon_isomorphic_relabel () =
  let pairs = [ ((0, 1), 2); ((1, 2), 1); ((2, 3), 3); ((0, 3), 1) ] in
  let measured = [ 0; 2 ] in
  List.iter
    (fun perm ->
      let a = Canon.of_interactions ~n:4 ~pairs ~measured in
      let b =
        Canon.of_interactions ~n:4
          ~pairs:(relabel_pairs perm pairs)
          ~measured:(List.map (fun q -> perm.(q)) measured)
      in
      Alcotest.(check bool) "same canonical form" true
        (Canon.equal_form a.Canon.form b.Canon.form);
      Alcotest.(check int) "same hash" a.Canon.hash b.Canon.hash)
    [ [| 3; 0; 2; 1 |]; [| 1; 2; 3; 0 |]; [| 2; 0; 3; 1 |] ]

let two_triangles =
  [ ((0, 1), 1); ((1, 2), 1); ((2, 0), 1); ((3, 4), 1); ((4, 5), 1); ((5, 3), 1) ]

let six_cycle =
  [ ((0, 1), 1); ((1, 2), 1); ((2, 3), 1); ((3, 4), 1); ((4, 5), 1); ((5, 0), 1) ]

let test_canon_near_miss () =
  (* Two directed triangles vs one directed 6-cycle: identical degree
     sequence (every qubit has out- and in-degree 1), but the graphs are
     not isomorphic, so the canonical forms must differ. *)
  let a = Canon.of_interactions ~n:6 ~pairs:two_triangles ~measured:[] in
  let b = Canon.of_interactions ~n:6 ~pairs:six_cycle ~measured:[] in
  Alcotest.(check bool) "distinct forms" false (Canon.equal_form a.Canon.form b.Canon.form)

let test_canon_measured_distinguishes () =
  (* Same edges, different measured set: distinct forms. *)
  let pairs = [ ((0, 1), 1); ((1, 2), 1) ] in
  let a = Canon.of_interactions ~n:3 ~pairs ~measured:[ 0 ] in
  let b = Canon.of_interactions ~n:3 ~pairs ~measured:[ 2 ] in
  Alcotest.(check bool) "distinct forms" false (Canon.equal_form a.Canon.form b.Canon.form)

(* ---------- The cache ---------- *)

(* A deliberately non-uniform score model so that permutation-translation
   mistakes change the objective. *)
let score a b = 0.80 +. (0.01 *. float_of_int (((a * 7) + (b * 3)) mod 13))
let readout q = 0.90 +. (0.005 *. float_of_int q)

let problem_of ?(n_hardware = 8) ~n_program pairs measured =
  Layout.Problem.make ~n_program ~n_hardware ~pairs ~measured ~score ~readout ()

let test_cache_relabel_hit () =
  let cache = Cache.create ~capacity:8 () in
  let token = ref 0 in
  let pairs = [ ((0, 1), 2); ((1, 2), 1); ((2, 3), 3) ] in
  let perm = [| 2; 3; 1; 0 |] in
  let pr = problem_of ~n_program:4 pairs [ 3 ] in
  let pr' = problem_of ~n_program:4 (relabel_pairs perm pairs) [ perm.(3) ] in
  let a = Canon.of_problem pr and b = Canon.of_problem pr' in
  let r = Layout.Bb.solve pr in
  Cache.store cache ~token ~scope:"s" a ~strategy:"bb" ~proven_optimal:true
    r.Report.placement;
  (match Cache.lookup cache ~token ~scope:"s" b with
  | None -> Alcotest.fail "expected a hit on the isomorphic relabeling"
  | Some (placement, strategy, optimal) ->
    Alcotest.(check string) "stored strategy" "bb" strategy;
    Alcotest.(check bool) "stored optimality" true optimal;
    let obj, log = Layout.Problem.evaluate pr' placement in
    let obj0, log0 = Layout.Problem.evaluate pr r.Report.placement in
    Alcotest.(check (float 0.)) "objective preserved by translation" obj0 obj;
    Alcotest.(check (float 0.)) "log-product preserved" log0 log);
  (* Same form under a different scope or a different (physical) token
     must miss: structural equality of tokens is not enough. *)
  Alcotest.(check bool) "scope miss" true
    (Cache.lookup cache ~token ~scope:"other" b = None);
  Alcotest.(check bool) "token miss" true
    (Cache.lookup cache ~token:(ref 0) ~scope:"s" b = None);
  let st = Cache.stats cache in
  Alcotest.(check int) "hits" 1 st.Cache.hits;
  Alcotest.(check int) "misses" 2 st.Cache.misses

let test_cache_near_miss_graphs () =
  (* Same degree sequence, different edges: must not collide. *)
  let cache = Cache.create ~capacity:8 () in
  let token = ref 0 in
  let a = Canon.of_interactions ~n:6 ~pairs:two_triangles ~measured:[] in
  let b = Canon.of_interactions ~n:6 ~pairs:six_cycle ~measured:[] in
  Cache.store cache ~token ~scope:"s" a ~strategy:"bb" ~proven_optimal:true
    [| 0; 1; 2; 3; 4; 5 |];
  Alcotest.(check bool) "near-miss graph misses" true
    (Cache.lookup cache ~token ~scope:"s" b = None)

let test_cache_lru_eviction () =
  let cache = Cache.create ~capacity:2 () in
  let token = ref 0 in
  let form_of i = Canon.of_interactions ~n:3 ~pairs:[ ((0, 1), i + 1) ] ~measured:[] in
  let store c = Cache.store cache ~token ~scope:"s" c ~strategy:"bb" ~proven_optimal:true [| 0; 1; 2 |] in
  let a = form_of 0 and b = form_of 1 and c = form_of 2 in
  store a;
  store b;
  (* Touch [a] so [b] is the least recently used, then overflow. *)
  ignore (Cache.lookup cache ~token ~scope:"s" a);
  store c;
  let st = Cache.stats cache in
  Alcotest.(check int) "bounded" 2 st.Cache.size;
  Alcotest.(check int) "one eviction" 1 st.Cache.evictions;
  Alcotest.(check bool) "recently used survives" true
    (Cache.lookup cache ~token ~scope:"s" a <> None);
  Alcotest.(check bool) "LRU evicted" true (Cache.lookup cache ~token ~scope:"s" b = None);
  Cache.clear cache;
  Alcotest.(check int) "cleared" 0 (Cache.stats cache).Cache.size

let cnot_circuit n pairs measured =
  Circuit.create n
    (List.map (fun (a, b) -> G.Two (G.Cnot, a, b)) pairs
    @ List.map (fun q -> G.Measure q) measured)

let test_placement_cache_hits_relabeled_circuit () =
  (* End-to-end satellite: isomorphic program relabelings must hit the
     same entry of the process-wide cache; near-miss graphs must not. *)
  Triq.Placement.cache_clear ();
  let machine = Machines.ibmq14 in
  let reliability = reliability_for machine in
  let solve c =
    Triq.Placement.solve ~reliability ~machine_name:machine.Machine.name ~day:0 c
  in
  let c1 = cnot_circuit 3 [ (0, 1); (1, 2) ] [ 2 ] in
  (* The same line relabeled by 0->2, 1->0, 2->1. *)
  let c2 = cnot_circuit 3 [ (2, 0); (0, 1) ] [ 1 ] in
  let r1 = solve c1 in
  let r2 = solve c2 in
  Alcotest.(check string) "cold solve misses" "miss" (Report.cache_status_name r1.Report.cache);
  Alcotest.(check string) "relabeling hits" "hit" (Report.cache_status_name r2.Report.cache);
  Alcotest.(check (float 0.)) "identical score" r1.Report.objective r2.Report.objective;
  (* Near-miss pair: same degree sequence, different graphs. *)
  let tri = cnot_circuit 6 [ (0, 1); (1, 2); (2, 0); (3, 4); (4, 5); (5, 3) ] [] in
  let cyc = cnot_circuit 6 [ (0, 1); (1, 2); (2, 3); (3, 4); (4, 5); (5, 0) ] [] in
  let rt = solve tri in
  let rc = solve cyc in
  Alcotest.(check string) "triangles miss" "miss" (Report.cache_status_name rt.Report.cache);
  Alcotest.(check string) "cycle must not hit" "miss" (Report.cache_status_name rc.Report.cache)

let test_placement_cache_disabled () =
  let machine = Machines.ibmq5 in
  let reliability = reliability_for machine in
  let config = Layout.Config.make ~cache:false () in
  let c = cnot_circuit 2 [ (0, 1) ] [ 0; 1 ] in
  let r =
    Triq.Placement.solve ~config ~reliability ~machine_name:machine.Machine.name
      ~day:0 c
  in
  Alcotest.(check string) "bypass" "bypass" (Report.cache_status_name r.Report.cache)

(* ---------- Strategies and the portfolio ---------- *)

let problems_for tests =
  List.map
    (fun (machine, (p : Programs.t)) ->
      let reliability = reliability_for machine in
      let flat = Ir.Decompose.flatten p.Programs.circuit in
      (machine, p, Triq.Placement.problem reliability flat))
    tests

let strategy_matrix =
  [
    (Machines.ibmq5, Programs.bv 4);
    (Machines.agave, Programs.toffoli);
    (Machines.ibmq14, Programs.hidden_shift 4);
  ]

let test_strategies_agree_on_objective () =
  List.iter
    (fun (machine, (p : Programs.t), pr) ->
      let bb = Layout.Bb.solve pr in
      let smt = Layout.Smt_search.solve pr in
      let portfolio = Layout.Portfolio.solve pr in
      let greedy = Layout.Greedy.solve pr in
      let close a b = Float.abs (a -. b) <= 1e-9 in
      if not (close bb.Report.objective smt.Report.objective) then
        Alcotest.failf "%s/%s: bb %.6f vs smt %.6f" machine.Machine.name
          p.Programs.name bb.Report.objective smt.Report.objective;
      if not (close bb.Report.objective portfolio.Report.objective) then
        Alcotest.failf "%s/%s: bb %.6f vs portfolio %.6f" machine.Machine.name
          p.Programs.name bb.Report.objective portfolio.Report.objective;
      Alcotest.(check bool) "greedy is a lower bound" true
        (greedy.Report.objective <= bb.Report.objective +. 1e-12);
      Alcotest.(check bool) "greedy never claims optimality" false
        greedy.Report.proven_optimal)
    (problems_for strategy_matrix)

let test_portfolio_cross_jobs_determinism () =
  (* The portfolio's selected placement, objective and winner label must
     be identical for every pool size. *)
  List.iter
    (fun (_machine, _p, pr) ->
      let runs =
        List.map
          (fun jobs ->
            Parallel.Pool.with_pool ~jobs (fun pool ->
                Layout.Portfolio.solve ~pool pr))
          [ 1; 2; 8 ]
      in
      match runs with
      | first :: rest ->
        List.iter
          (fun (r : Report.t) ->
            Alcotest.(check (float 0.)) "objective" first.Report.objective r.Report.objective;
            Alcotest.(check bool) "placement" true (r.Report.placement = first.Report.placement);
            Alcotest.(check string) "winner" first.Report.strategy r.Report.strategy)
          rest
      | [] -> assert false)
    (problems_for strategy_matrix)

let test_strategy_registry () =
  Alcotest.(check bool) "builtins registered" true
    (List.for_all
       (fun n -> Layout.Strategy.find n <> None)
       [ "bb"; "smt"; "greedy" ]);
  Alcotest.check_raises "duplicate rejected"
    (Invalid_argument "Layout.Strategy.register: duplicate strategy bb")
    (fun () -> Layout.Strategy.register Layout.Strategy.bb)

(* ---------- Reports and the compat wrappers ---------- *)

let test_wrappers_match_engine () =
  let machine = Machines.ibmq5 in
  let reliability = reliability_for machine in
  let flat = Ir.Decompose.flatten (Programs.bv 4).Programs.circuit in
  let pr = Triq.Placement.problem reliability flat in
  let engine = Layout.Bb.solve pr in
  let legacy = Triq.Mapper.solve reliability flat in
  Alcotest.(check bool) "same placement" true
    (legacy.Triq.Mapper.placement = engine.Report.placement);
  Alcotest.(check int) "nodes_explored = search_nodes"
    engine.Report.work.Report.search_nodes legacy.Triq.Mapper.nodes_explored;
  Alcotest.(check bool) "optimal = proven_optimal" engine.Report.proven_optimal
    legacy.Triq.Mapper.optimal;
  let smt_engine = Layout.Smt_search.solve pr in
  let smt_legacy = Triq.Mapper_smt.solve reliability flat in
  Alcotest.(check bool) "same smt placement" true
    (smt_legacy.Triq.Mapper.placement = smt_engine.Report.placement);
  Alcotest.(check int) "smt nodes_explored = sat_decisions"
    smt_engine.Report.work.Report.sat_decisions smt_legacy.Triq.Mapper.nodes_explored;
  Alcotest.(check int) "legacy_nodes totals the work"
    (Report.work_total engine.Report.work)
    (Report.legacy_nodes engine)

let test_pipeline_layout_report () =
  Triq.Placement.cache_clear ();
  let machine = Machines.ibmq5 in
  let c = (Programs.bv 4).Programs.circuit in
  let r = Triq.Pipeline.compile_level machine c ~level:Triq.Pipeline.OneQOptCN in
  (match r.Triq.Pipeline.layout with
  | None -> Alcotest.fail "solver levels must report a layout"
  | Some l ->
    Alcotest.(check string) "default strategy" "bb" l.Report.strategy;
    Alcotest.(check bool) "did some work" true (Report.work_total l.Report.work > 0);
    Alcotest.(check bool) "proved optimality" true l.Report.proven_optimal;
    Alcotest.(check bool) "placement recorded" true
      (l.Report.placement = r.Triq.Pipeline.initial_placement));
  let rn = Triq.Pipeline.compile_level machine c ~level:Triq.Pipeline.N in
  Alcotest.(check bool) "identity mapping has no layout" true
    (rn.Triq.Pipeline.layout = None)

let test_pipeline_strategy_dispatch () =
  let machine = Machines.ibmq5 in
  let c = (Programs.bv 4).Programs.circuit in
  let strategy_of mapper =
    let config = Triq.Pass.Config.make ~mapper ~layout_cache:false () in
    let r =
      Triq.Pipeline.compile_level ~config machine c ~level:Triq.Pipeline.OneQOptCN
    in
    match r.Triq.Pipeline.layout with
    | None -> Alcotest.fail "expected a layout report"
    | Some l -> l.Report.strategy
  in
  Alcotest.(check string) "bb" "bb" (strategy_of Layout.Config.Bb);
  Alcotest.(check string) "smt" "smt" (strategy_of Layout.Config.Smt);
  Alcotest.(check string) "greedy" "greedy" (strategy_of Layout.Config.Greedy);
  let portfolio = strategy_of Layout.Config.Portfolio in
  Alcotest.(check bool) "portfolio labels its winner" true
    (String.length portfolio > String.length "portfolio:"
    && String.sub portfolio 0 10 = "portfolio:")

let () =
  Alcotest.run "layout"
    [
      ( "golden",
        [ Alcotest.test_case "bit identity (cold + cached)" `Quick test_golden_bit_identity ] );
      ( "canon",
        [
          Alcotest.test_case "isomorphic relabel" `Quick test_canon_isomorphic_relabel;
          Alcotest.test_case "near-miss graphs" `Quick test_canon_near_miss;
          Alcotest.test_case "measured set" `Quick test_canon_measured_distinguishes;
        ] );
      ( "cache",
        [
          Alcotest.test_case "relabel hit" `Quick test_cache_relabel_hit;
          Alcotest.test_case "near-miss graphs" `Quick test_cache_near_miss_graphs;
          Alcotest.test_case "lru eviction" `Quick test_cache_lru_eviction;
          Alcotest.test_case "pipeline relabel hit" `Quick
            test_placement_cache_hits_relabeled_circuit;
          Alcotest.test_case "bypass" `Quick test_placement_cache_disabled;
        ] );
      ( "strategies",
        [
          Alcotest.test_case "objective agreement" `Quick test_strategies_agree_on_objective;
          Alcotest.test_case "portfolio determinism across -j" `Quick
            test_portfolio_cross_jobs_determinism;
          Alcotest.test_case "registry" `Quick test_strategy_registry;
        ] );
      ( "reports",
        [
          Alcotest.test_case "compat wrappers" `Quick test_wrappers_match_engine;
          Alcotest.test_case "pipeline report" `Quick test_pipeline_layout_report;
          Alcotest.test_case "strategy dispatch" `Quick test_pipeline_strategy_dispatch;
        ] );
    ]
