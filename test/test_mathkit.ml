(* Unit and property tests for the math substrate. *)

module Rng = Mathkit.Rng
module C = Mathkit.Cplx
module M = Mathkit.Matrix
module Q = Mathkit.Quaternion
module S = Mathkit.Stats

let check_float = Alcotest.(check (float 1e-9))
let check_float_loose = Alcotest.(check (float 1e-6))

(* ---------- Rng ---------- *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  Alcotest.(check bool) "different seeds differ" true (Rng.int64 a <> Rng.int64 b)

let test_rng_float_range () =
  let t = Rng.create 7 in
  for _ = 1 to 10_000 do
    let f = Rng.float t in
    if f < 0.0 || f >= 1.0 then Alcotest.failf "float out of range: %f" f
  done

let test_rng_int_range () =
  let t = Rng.create 9 in
  for _ = 1 to 10_000 do
    let i = Rng.int t 17 in
    if i < 0 || i >= 17 then Alcotest.failf "int out of range: %d" i
  done

let test_rng_int_rejects_bad_bound () =
  let t = Rng.create 1 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int t 0))

let test_rng_mean () =
  let t = Rng.create 3 in
  let n = 50_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Rng.float t
  done;
  let mean = !sum /. float_of_int n in
  if Float.abs (mean -. 0.5) > 0.01 then Alcotest.failf "biased mean: %f" mean

let test_rng_gaussian_moments () =
  let t = Rng.create 11 in
  let n = 50_000 in
  let sum = ref 0.0 and sumsq = ref 0.0 in
  for _ = 1 to n do
    let g = Rng.gaussian t in
    sum := !sum +. g;
    sumsq := !sumsq +. (g *. g)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sumsq /. float_of_int n) -. (mean *. mean) in
  if Float.abs mean > 0.03 then Alcotest.failf "gaussian mean: %f" mean;
  if Float.abs (var -. 1.0) > 0.05 then Alcotest.failf "gaussian var: %f" var

let test_rng_split_independent () =
  let t = Rng.create 5 in
  let u = Rng.split t in
  (* The split stream must not simply mirror the parent. *)
  let same = ref 0 in
  for _ = 1 to 100 do
    if Rng.int64 t = Rng.int64 u then incr same
  done;
  Alcotest.(check int) "no collisions" 0 !same

let test_rng_shuffle_permutation () =
  let t = Rng.create 123 in
  let a = Array.init 50 (fun i -> i) in
  Rng.shuffle t a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 (fun i -> i)) sorted

let test_rng_choose () =
  let t = Rng.create 77 in
  for _ = 1 to 100 do
    let x = Rng.choose t [ 1; 2; 3 ] in
    if x < 1 || x > 3 then Alcotest.failf "choose out of range: %d" x
  done;
  Alcotest.check_raises "empty" (Invalid_argument "Rng.choose: empty list") (fun () ->
      ignore (Rng.choose t []))

(* ---------- Cplx ---------- *)

let test_cplx_arith () =
  let a = C.make 1.0 2.0 and b = C.make 3.0 (-1.0) in
  check_float "add re" 4.0 (C.add a b).re;
  check_float "add im" 1.0 (C.add a b).im;
  check_float "mul re" 5.0 (C.mul a b).re;
  check_float "mul im" 5.0 (C.mul a b).im;
  check_float "norm2" 5.0 (C.norm2 a);
  check_float "conj im" (-2.0) (C.conj a).im

let test_cplx_exp_i () =
  let z = C.exp_i (Float.pi /. 2.0) in
  check_float "re" 0.0 z.re;
  check_float "im" 1.0 z.im;
  Alcotest.(check bool) "unit modulus" true (Float.abs (C.abs z -. 1.0) < 1e-12)

let test_cplx_approx () =
  Alcotest.(check bool) "close" true (C.approx (C.make 1.0 0.0) (C.make (1.0 +. 1e-12) 0.0));
  Alcotest.(check bool) "far" false (C.approx (C.make 1.0 0.0) (C.make 1.1 0.0))

(* ---------- Matrix ---------- *)

let test_matrix_identity_mul () =
  let i3 = M.identity 3 in
  let a = M.of_rows [ [ C.re 1.; C.re 2.; C.re 3. ];
                      [ C.re 4.; C.re 5.; C.re 6. ];
                      [ C.re 7.; C.re 8.; C.re 9. ] ] in
  Alcotest.(check bool) "I*A = A" true (M.equal (M.mul i3 a) a);
  Alcotest.(check bool) "A*I = A" true (M.equal (M.mul a i3) a)

let test_matrix_mul_known () =
  let a = M.of_rows [ [ C.re 1.; C.re 2. ]; [ C.re 3.; C.re 4. ] ] in
  let b = M.of_rows [ [ C.re 0.; C.re 1. ]; [ C.re 1.; C.re 0. ] ] in
  let ab = M.mul a b in
  check_float "swap columns" 2.0 (M.get ab 0 0).re;
  check_float "swap columns" 1.0 (M.get ab 0 1).re

let test_matrix_kron_dims () =
  let a = M.identity 2 and b = M.identity 3 in
  let k = M.kron a b in
  Alcotest.(check int) "rows" 6 (M.rows k);
  Alcotest.(check bool) "I kron I = I" true (M.equal k (M.identity 6))

let test_matrix_kron_values () =
  let x = M.of_rows [ [ C.zero; C.one ]; [ C.one; C.zero ] ] in
  let k = M.kron x (M.identity 2) in
  (* X (x) I maps |00> -> |10>: column 0 has a 1 in row 2. *)
  check_float "entry" 1.0 (M.get k 2 0).re;
  check_float "entry" 0.0 (M.get k 0 0).re

let test_matrix_adjoint () =
  let a = M.of_rows [ [ C.make 1. 2.; C.make 3. 4. ]; [ C.make 5. 6.; C.make 7. 8. ] ] in
  let ad = M.adjoint a in
  check_float "transposed re" 3.0 (M.get ad 1 0).re;
  check_float "conjugated im" (-4.0) (M.get ad 1 0).im

let test_matrix_unitary () =
  let h =
    let s = C.re (1.0 /. sqrt 2.0) in
    M.of_rows [ [ s; s ]; [ s; C.neg s ] ]
  in
  Alcotest.(check bool) "H unitary" true (M.is_unitary h);
  let not_unitary = M.of_rows [ [ C.re 1.; C.re 1. ]; [ C.zero; C.re 1. ] ] in
  Alcotest.(check bool) "shear not unitary" false (M.is_unitary not_unitary)

let test_matrix_proportional () =
  let a = M.identity 2 in
  let b = M.scale (C.exp_i 0.7) (M.identity 2) in
  Alcotest.(check bool) "global phase" true (M.proportional a b);
  let c = M.of_rows [ [ C.one; C.zero ]; [ C.zero; C.neg C.one ] ] in
  Alcotest.(check bool) "Z not prop I" false (M.proportional a c)

let test_matrix_apply () =
  let x = M.of_rows [ [ C.zero; C.one ]; [ C.one; C.zero ] ] in
  let v = [| C.one; C.zero |] in
  let r = M.apply x v in
  check_float "flipped" 1.0 r.(1).re;
  check_float "flipped" 0.0 r.(0).re

let test_matrix_trace () =
  let a = M.of_rows [ [ C.re 1.; C.re 9. ]; [ C.re 9.; C.re 2. ] ] in
  check_float "trace" 3.0 (M.trace a).re

(* ---------- Quaternion ---------- *)

let test_quaternion_axis_composition () =
  (* Two quarter turns about X equal a half turn about X. *)
  let q = Q.mul (Q.rx (Float.pi /. 2.0)) (Q.rx (Float.pi /. 2.0)) in
  Alcotest.(check bool) "Rx(pi/2)^2 = Rx(pi)" true (Q.equal_rotation q (Q.rx Float.pi))

let test_quaternion_inverse () =
  let q = Q.of_axis_angle (1.0, 2.0, 3.0) 0.9 in
  Alcotest.(check bool) "q * q^-1 = 1" true
    (Q.is_identity (Q.mul q (Q.conjugate q)))

let test_quaternion_matrix_homomorphism () =
  (* to_matrix must be a group homomorphism up to phase. *)
  let a = Q.of_axis_angle (1.0, 0.0, 2.0) 0.7 in
  let b = Q.of_axis_angle (0.0, 1.0, -1.0) 1.3 in
  let lhs = Q.to_matrix (Q.mul a b) in
  let rhs = M.mul (Q.to_matrix a) (Q.to_matrix b) in
  Alcotest.(check bool) "U(ab) = U(a)U(b)" true (M.proportional lhs rhs)

let test_quaternion_zyz_roundtrip () =
  let rng = Rng.create 31 in
  for _ = 1 to 200 do
    let axis = (Rng.gaussian rng, Rng.gaussian rng, Rng.gaussian rng) in
    let theta = Rng.float rng *. 2.0 *. Float.pi in
    let q = try Q.of_axis_angle axis theta with Invalid_argument _ -> Q.identity in
    let alpha, beta, gamma = Q.to_zyz q in
    let rebuilt = Q.mul (Q.rz alpha) (Q.mul (Q.ry beta) (Q.rz gamma)) in
    if not (Q.equal_rotation ~eps:1e-6 q rebuilt) then
      Alcotest.failf "zyz roundtrip failed for %s" (Format.asprintf "%a" Q.pp q)
  done

let test_quaternion_zxz_roundtrip () =
  let rng = Rng.create 37 in
  for _ = 1 to 200 do
    let axis = (Rng.gaussian rng, Rng.gaussian rng, Rng.gaussian rng) in
    let theta = Rng.float rng *. 2.0 *. Float.pi in
    let q = try Q.of_axis_angle axis theta with Invalid_argument _ -> Q.identity in
    let alpha, beta, gamma = Q.to_zxz q in
    let rebuilt = Q.mul (Q.rz alpha) (Q.mul (Q.rx beta) (Q.rz gamma)) in
    if not (Q.equal_rotation ~eps:1e-6 q rebuilt) then
      Alcotest.failf "zxz roundtrip failed for %s" (Format.asprintf "%a" Q.pp q)
  done

let test_quaternion_z_rotation_detection () =
  Alcotest.(check bool) "rz is z-rot" true (Q.is_z_rotation (Q.rz 0.4));
  Alcotest.(check bool) "identity is z-rot" true (Q.is_z_rotation Q.identity);
  Alcotest.(check bool) "rx is not" false (Q.is_z_rotation (Q.rx 0.4));
  check_float_loose "angle recovered" 0.4 (Q.z_angle (Q.rz 0.4))

let test_quaternion_rxy () =
  (* Rxy at phi = 0 is Rx; at phi = pi/2 it is Ry. *)
  Alcotest.(check bool) "rxy 0 = rx" true
    (Q.equal_rotation (Q.rxy 0.8 0.0) (Q.rx 0.8));
  Alcotest.(check bool) "rxy pi/2 = ry" true
    (Q.equal_rotation (Q.rxy 0.8 (Float.pi /. 2.0)) (Q.ry 0.8))

let test_quaternion_degenerate_euler () =
  (* beta = 0 (pure Z) and beta = pi edge cases. *)
  let a1, b1, g1 = Q.to_zyz (Q.rz 1.1) in
  check_float_loose "pure z beta" 0.0 b1;
  Alcotest.(check bool) "pure z rebuilt" true
    (Q.equal_rotation ~eps:1e-6 (Q.rz 1.1)
       (Q.mul (Q.rz a1) (Q.mul (Q.ry b1) (Q.rz g1))));
  let a2, b2, g2 = Q.to_zyz (Q.rx Float.pi) in
  check_float_loose "x flip beta" Float.pi b2;
  Alcotest.(check bool) "x flip rebuilt" true
    (Q.equal_rotation ~eps:1e-6 (Q.rx Float.pi)
       (Q.mul (Q.rz a2) (Q.mul (Q.ry b2) (Q.rz g2))))

(* ---------- Stats ---------- *)

let test_stats_basic () =
  check_float "mean" 2.0 (S.mean [ 1.0; 2.0; 3.0 ]);
  check_float "sum" 6.0 (S.sum [ 1.0; 2.0; 3.0 ]);
  check_float "geomean" 2.0 (S.geomean [ 1.0; 2.0; 4.0 ]);
  check_float "median odd" 2.0 (S.median [ 3.0; 1.0; 2.0 ]);
  check_float "median even" 2.5 (S.median [ 1.0; 2.0; 3.0; 4.0 ]);
  check_float "min" 1.0 (S.minimum [ 3.0; 1.0; 2.0 ]);
  check_float "max" 3.0 (S.maximum [ 3.0; 1.0; 2.0 ])

let test_stats_stddev () =
  check_float "constant" 0.0 (S.stddev [ 5.0; 5.0; 5.0 ]);
  check_float_loose "known" (sqrt 2.0) (S.stddev [ 1.0; 3.0; 5.0; 3.0 ])

let test_stats_geomean_ratio () =
  check_float "2x everywhere" 2.0 (S.geomean_ratio [ (2.0, 1.0); (4.0, 2.0) ]);
  Alcotest.check_raises "all dropped -> raises"
    (Invalid_argument "Stats.geomean_ratio: no pairs with a non-zero denominator")
    (fun () -> ignore (S.geomean_ratio [ (1.0, 0.0) ]));
  Alcotest.(check (option (float 1e-12)))
    "opt: all dropped -> None" None
    (S.geomean_ratio_opt [ (1.0, 0.0) ]);
  Alcotest.(check (option (float 1e-12)))
    "opt: zero denominators skipped" (Some 2.0)
    (S.geomean_ratio_opt [ (2.0, 1.0); (1.0, 0.0) ])

let test_stats_percentile () =
  let l = [ 1.0; 2.0; 3.0; 4.0; 5.0 ] in
  check_float "p0" 1.0 (S.percentile 0.0 l);
  check_float "p50" 3.0 (S.percentile 50.0 l);
  check_float "p100" 5.0 (S.percentile 100.0 l);
  check_float "p25" 2.0 (S.percentile 25.0 l)

let test_stats_correlation () =
  let perfect = List.init 10 (fun i -> (float_of_int i, 2.0 +. (3.0 *. float_of_int i))) in
  Alcotest.(check (float 1e-9)) "perfect" 1.0 (S.correlation perfect);
  let inverse = List.map (fun (x, y) -> (x, -.y)) perfect in
  Alcotest.(check (float 1e-9)) "anti" (-1.0) (S.correlation inverse);
  Alcotest.(check bool) "too few" true
    (try ignore (S.correlation [ (1.0, 1.0) ]); false with Invalid_argument _ -> true);
  Alcotest.(check bool) "zero variance" true
    (try ignore (S.correlation [ (1.0, 5.0); (2.0, 5.0) ]); false
     with Invalid_argument _ -> true)

let test_stats_empty () =
  Alcotest.check_raises "mean" (Invalid_argument "Stats.mean: empty list") (fun () ->
      ignore (S.mean []))

(* ---------- qcheck properties ---------- *)

let quaternion_gen =
  QCheck.Gen.(
    map
      (fun (w, x, y, z) ->
        let q = { Q.w; x; y; z } in
        if Q.norm q < 1e-6 then Q.identity else Q.normalize q)
      (quad (float_range (-1.0) 1.0) (float_range (-1.0) 1.0)
         (float_range (-1.0) 1.0) (float_range (-1.0) 1.0)))

let quaternion_arb = QCheck.make quaternion_gen

let prop_quaternion_norm_preserved =
  QCheck.Test.make ~name:"quaternion product stays unit" ~count:500
    (QCheck.pair quaternion_arb quaternion_arb) (fun (a, b) ->
      Float.abs (Q.norm (Q.mul a b) -. 1.0) < 1e-9)

let prop_quaternion_matrix_unitary =
  QCheck.Test.make ~name:"quaternion matrix is unitary" ~count:500 quaternion_arb
    (fun q -> M.is_unitary ~eps:1e-8 (Q.to_matrix q))

let prop_zyz_total =
  QCheck.Test.make ~name:"zyz always reconstructs" ~count:500 quaternion_arb
    (fun q ->
      let a, b, g = Q.to_zyz q in
      Q.equal_rotation ~eps:1e-6 q (Q.mul (Q.rz a) (Q.mul (Q.ry b) (Q.rz g))))

let prop_geomean_bounds =
  QCheck.Test.make ~name:"geomean between min and max" ~count:500
    QCheck.(list_of_size Gen.(int_range 1 20) (float_range 0.001 1000.0))
    (fun l ->
      l = []
      ||
      let g = S.geomean l in
      g >= S.minimum l -. 1e-9 && g <= S.maximum l +. 1e-9)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_quaternion_norm_preserved;
      prop_quaternion_matrix_unitary;
      prop_zyz_total;
      prop_geomean_bounds;
    ]

let () =
  Alcotest.run "mathkit"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "int range" `Quick test_rng_int_range;
          Alcotest.test_case "bad bound" `Quick test_rng_int_rejects_bad_bound;
          Alcotest.test_case "uniform mean" `Quick test_rng_mean;
          Alcotest.test_case "gaussian moments" `Quick test_rng_gaussian_moments;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "shuffle permutation" `Quick test_rng_shuffle_permutation;
          Alcotest.test_case "choose" `Quick test_rng_choose;
        ] );
      ( "cplx",
        [
          Alcotest.test_case "arithmetic" `Quick test_cplx_arith;
          Alcotest.test_case "exp_i" `Quick test_cplx_exp_i;
          Alcotest.test_case "approx" `Quick test_cplx_approx;
        ] );
      ( "matrix",
        [
          Alcotest.test_case "identity mul" `Quick test_matrix_identity_mul;
          Alcotest.test_case "mul known" `Quick test_matrix_mul_known;
          Alcotest.test_case "kron dims" `Quick test_matrix_kron_dims;
          Alcotest.test_case "kron values" `Quick test_matrix_kron_values;
          Alcotest.test_case "adjoint" `Quick test_matrix_adjoint;
          Alcotest.test_case "unitarity" `Quick test_matrix_unitary;
          Alcotest.test_case "proportional" `Quick test_matrix_proportional;
          Alcotest.test_case "apply" `Quick test_matrix_apply;
          Alcotest.test_case "trace" `Quick test_matrix_trace;
        ] );
      ( "quaternion",
        [
          Alcotest.test_case "axis composition" `Quick test_quaternion_axis_composition;
          Alcotest.test_case "inverse" `Quick test_quaternion_inverse;
          Alcotest.test_case "matrix homomorphism" `Quick test_quaternion_matrix_homomorphism;
          Alcotest.test_case "zyz roundtrip" `Quick test_quaternion_zyz_roundtrip;
          Alcotest.test_case "zxz roundtrip" `Quick test_quaternion_zxz_roundtrip;
          Alcotest.test_case "z-rotation detection" `Quick test_quaternion_z_rotation_detection;
          Alcotest.test_case "rxy axes" `Quick test_quaternion_rxy;
          Alcotest.test_case "degenerate euler" `Quick test_quaternion_degenerate_euler;
        ] );
      ( "stats",
        [
          Alcotest.test_case "basics" `Quick test_stats_basic;
          Alcotest.test_case "stddev" `Quick test_stats_stddev;
          Alcotest.test_case "geomean ratio" `Quick test_stats_geomean_ratio;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "empty input" `Quick test_stats_empty;
          Alcotest.test_case "correlation" `Quick test_stats_correlation;
        ] );
      ("properties", qcheck_cases);
    ]
