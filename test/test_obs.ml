(* Observability-layer tests: span nesting and ordering (single-domain
   and under a -j 8 domain pool), histogram bucket geometry, exporter
   round-trips (the Chrome trace re-parses with the independent
   Device.Json reader), the null-sink no-op contract (instrumentation
   must not perturb compile or simulation results), pass_times_s as a
   derived view of the pass spans, metrics counter deltas, the shared
   CLI envelope, and the deprecated Runner.run compat wrapper. *)

module Span = Obs.Span
module Metrics = Obs.Metrics
module Export = Obs.Export
module Json = Obs.Json
module Pool = Parallel.Pool
module Runner = Sim.Runner
module Programs = Bench_kit.Programs

(* Spans are recorded into one process-wide sink; each test that uses it
   starts from a clean, enabled sink and leaves it disabled. *)
let with_sink f =
  Span.enable ();
  Span.reset ();
  Fun.protect ~finally:(fun () -> Span.disable (); Span.reset ()) f

(* ---------- Spans ---------- *)

let test_span_nesting () =
  with_sink (fun () ->
      let r =
        Span.with_span "outer" (fun () ->
            Span.with_span ~attrs:[ ("k", Span.Int 7) ] "inner" (fun () -> 41)
            + 1)
      in
      Alcotest.(check int) "body result" 42 r;
      match Span.collected () with
      | [ outer; inner ] ->
        Alcotest.(check string) "outer name" "outer" outer.Span.name;
        Alcotest.(check string) "inner name" "inner" inner.Span.name;
        Alcotest.(check (option int))
          "inner parented to outer" (Some outer.Span.id) inner.Span.parent;
        Alcotest.(check (option int)) "outer is a root" None outer.Span.parent;
        Alcotest.(check bool) "inner starts after outer" true
          (Int64.compare inner.Span.start_ns outer.Span.start_ns >= 0);
        Alcotest.(check bool) "inner ends before outer" true
          (Int64.add inner.Span.start_ns inner.Span.dur_ns
           <= Int64.add outer.Span.start_ns outer.Span.dur_ns);
        Alcotest.(check bool) "attr kept" true
          (List.mem_assoc "k" inner.Span.attrs)
      | spans ->
        Alcotest.failf "expected 2 spans sorted outer-first, got %d"
          (List.length spans))

let test_span_exception_records () =
  with_sink (fun () ->
      (try Span.with_span "boom" (fun () -> failwith "x") with Failure _ -> ());
      match Span.collected () with
      | [ s ] -> Alcotest.(check string) "recorded on raise" "boom" s.Span.name
      | spans -> Alcotest.failf "expected 1 span, got %d" (List.length spans))

let test_span_pool_j8 () =
  with_sink (fun () ->
      let n = 32 in
      let squares =
        Pool.with_pool ~jobs:8 (fun pool ->
            Span.with_span "outer" (fun () ->
                Pool.map pool
                  (fun i ->
                    Span.with_span ~attrs:[ ("i", Span.Int i) ] "task"
                      (fun () -> i * i))
                  (List.init n Fun.id)))
      in
      Alcotest.(check (list int))
        "pool results unperturbed"
        (List.init n (fun i -> i * i))
        squares;
      let spans = Span.collected () in
      let outer =
        match List.filter (fun s -> s.Span.name = "outer") spans with
        | [ o ] -> o
        | l -> Alcotest.failf "expected 1 outer span, got %d" (List.length l)
      in
      let tasks = List.filter (fun s -> s.Span.name = "task") spans in
      Alcotest.(check int) "one span per task" n (List.length tasks);
      (* Parenting is per-domain: tasks that ran on the caller's domain
         nest under [outer]; tasks on worker domains are roots with a
         distinct domain id (the Chrome exporter shows them as lanes). *)
      List.iter
        (fun t ->
          match t.Span.parent with
          | Some p ->
            Alcotest.(check int) "parented task under outer" outer.Span.id p
          | None ->
            Alcotest.(check bool) "root task ran on a worker domain" true
              (t.Span.domain <> outer.Span.domain))
        tasks;
      (* [collected] sorts by (start_ns, id). *)
      let rec sorted = function
        | a :: (b :: _ as rest) ->
          (Int64.compare a.Span.start_ns b.Span.start_ns < 0
          || (a.Span.start_ns = b.Span.start_ns && a.Span.id < b.Span.id))
          && sorted rest
        | _ -> true
      in
      Alcotest.(check bool) "sorted by (start_ns, id)" true (sorted spans))

(* ---------- Histogram bucket geometry ---------- *)

let test_histogram_bucket_edges () =
  let idx = Metrics.bucket_index in
  Alcotest.(check int) "1.0 -> bucket 0" 0 (idx 1.0);
  Alcotest.(check int) "0.5 -> bucket 0" 0 (idx 0.5);
  Alcotest.(check int) "0.0 -> bucket 0" 0 (idx 0.0);
  Alcotest.(check int) "negative -> bucket 0" 0 (idx (-3.0));
  Alcotest.(check int) "nan -> bucket 0" 0 (idx Float.nan);
  Alcotest.(check int) "1.0+eps -> bucket 1" 1 (idx 1.0000001);
  Alcotest.(check int) "2.0 -> bucket 1 (inclusive upper)" 1 (idx 2.0);
  Alcotest.(check int) "2.0+eps -> bucket 2" 2 (idx 2.0000001);
  Alcotest.(check int) "4.0 -> bucket 2" 2 (idx 4.0);
  Alcotest.(check int) "1024 -> bucket 10" 10 (idx 1024.0);
  Alcotest.(check int) "inf -> last" (Metrics.n_buckets - 1) (idx Float.infinity);
  Alcotest.(check int) "huge -> last" (Metrics.n_buckets - 1) (idx 1e300);
  Alcotest.(check (float 0.0)) "upper 0" 1.0 (Metrics.bucket_upper 0);
  Alcotest.(check (float 0.0)) "upper 3" 8.0 (Metrics.bucket_upper 3);
  Alcotest.(check bool) "last upper open-ended" true
    (Metrics.bucket_upper (Metrics.n_buckets - 1) = Float.infinity)

let test_histogram_observe () =
  let h = Metrics.histogram "test.obs.histogram" in
  List.iter (Metrics.observe h) [ 0.5; 1.0; 2.0; 3.0; 1024.0 ];
  match List.assoc "test.obs.histogram" (Metrics.dump ()) with
  | Metrics.Histogram { count; sum; buckets } ->
    Alcotest.(check int) "count" 5 count;
    Alcotest.(check (float 1e-9)) "sum" 1030.5 sum;
    Alcotest.(check (list (pair (float 0.0) int)))
      "non-empty buckets (upper, n)"
      [ (1.0, 2); (2.0, 1); (4.0, 1); (1024.0, 1) ]
      buckets
  | _ -> Alcotest.fail "expected a histogram"

(* ---------- Exporters ---------- *)

let make_spans () =
  with_sink (fun () ->
      Span.with_span ~attrs:[ ("m", Span.Str "IBMQ5") ] "compile" (fun () ->
          Span.with_span "pass.routing" (fun () -> ());
          Span.with_span ~attrs:[ ("block", Span.Int 0) ] "sim.block"
            (fun () -> ()));
      Span.collected ())

let test_chrome_roundtrip () =
  let spans = make_spans () in
  let doc = Device.Json.parse (Export.chrome spans) in
  let events = Device.Json.(to_list (member "traceEvents" doc)) in
  Alcotest.(check int) "one event per span" (List.length spans)
    (List.length events);
  let names =
    List.map (fun e -> Device.Json.(to_str (member "name" e))) events
  in
  Alcotest.(check bool) "compile event present" true (List.mem "compile" names);
  List.iter
    (fun e ->
      Alcotest.(check string)
        "complete event" "X"
        Device.Json.(to_str (member "ph" e));
      Alcotest.(check bool) "relative ts >= 0" true
        (Device.Json.(to_float (member "ts" e)) >= 0.0);
      Alcotest.(check bool) "dur >= 0" true
        (Device.Json.(to_float (member "dur" e)) >= 0.0);
      ignore Device.Json.(to_int (member "tid" e)))
    events;
  let cats =
    List.map (fun e -> Device.Json.(to_str (member "cat" e))) events
  in
  Alcotest.(check bool) "category = name prefix" true (List.mem "sim" cats)

let test_jsonl_roundtrip () =
  let spans = make_spans () in
  let lines =
    String.split_on_char '\n' (String.trim (Export.jsonl spans))
  in
  Alcotest.(check int) "one line per span" (List.length spans)
    (List.length lines);
  List.iter2
    (fun line (s : Span.t) ->
      let doc = Device.Json.parse line in
      Alcotest.(check string)
        "name" s.Span.name
        Device.Json.(to_str (member "name" doc));
      Alcotest.(check int) "id" s.Span.id Device.Json.(to_int (member "id" doc));
      (* start_ns/dur_ns are strings: they do not fit a double exactly. *)
      Alcotest.(check string)
        "dur_ns" (Int64.to_string s.Span.dur_ns)
        Device.Json.(to_str (member "dur_ns" doc)))
    lines spans

let test_text_tree_nesting () =
  let spans = make_spans () in
  let text = Export.text_tree spans in
  Alcotest.(check bool) "root at margin" true
    (String.length text > 0 && text.[0] = 'c');
  Alcotest.(check bool) "child indented" true
    (let needle = "  pass.routing" in
     let rec find i =
       i + String.length needle <= String.length text
       && (String.sub text i (String.length needle) = needle || find (i + 1))
     in
     find 0)

(* ---------- Null sink ---------- *)

let test_null_sink_no_op () =
  Span.disable ();
  Span.reset ();
  let r = Span.with_span "ghost" (fun () -> 13) in
  let r', dt = Span.timed "ghost2" (fun () -> 14) in
  Alcotest.(check int) "with_span transparent" 13 r;
  Alcotest.(check int) "timed transparent" 14 r';
  Alcotest.(check bool) "timed still measures" true (dt >= 0.0);
  Alcotest.(check int) "nothing collected" 0 (List.length (Span.collected ()))

(* Tracing must not perturb results: the same compile + simulation with
   the sink off and on yields bit-identical outputs. *)
let test_null_sink_golden_compile () =
  let p = Programs.bv 4 in
  let machine = Device.Machines.ibmq14 in
  let compile () =
    Triq.Pipeline.compile_level machine p.Programs.circuit
      ~level:Triq.Pipeline.OneQOptCN
  in
  let simulate c =
    Runner.simulate
      ~config:(Runner.Config.make ~trajectories:40 ())
      (Triq.Pipeline.to_compiled c) p.Programs.spec
  in
  Span.disable ();
  let c_off = compile () in
  let o_off = simulate c_off in
  with_sink (fun () ->
      let c_on = compile () in
      let o_on = simulate c_on in
      Alcotest.(check bool) "placement identical" true
        (c_off.Triq.Pipeline.initial_placement
        = c_on.Triq.Pipeline.initial_placement);
      Alcotest.(check bool) "distribution identical" true
        (o_off.Runner.distribution = o_on.Runner.distribution);
      Alcotest.(check (float 0.0))
        "success identical" o_off.Runner.success_rate o_on.Runner.success_rate)

(* ---------- pass_times_s as a derived view of the spans ---------- *)

let test_pass_times_derived_from_spans () =
  let p = Programs.bv 4 in
  with_sink (fun () ->
      let r =
        Triq.Pipeline.compile_level Device.Machines.ibmq14 p.Programs.circuit
          ~level:Triq.Pipeline.OneQOptCN
      in
      let spans = Span.collected () in
      let compile_span =
        List.find (fun s -> s.Span.name = "compile") spans
      in
      List.iter
        (fun (name, seconds) ->
          match
            List.find_opt (fun s -> s.Span.name = "pass." ^ name) spans
          with
          | None -> Alcotest.failf "no span for pass %s" name
          | Some s ->
            (* timed returns the exact measurement the span records. *)
            Alcotest.(check (float 0.0))
              (name ^ " span is the measurement")
              (Obs.Clock.ns_to_s s.Span.dur_ns)
              seconds;
            Alcotest.(check (option int))
              (name ^ " nests under compile")
              (Some compile_span.Span.id) s.Span.parent)
        r.Triq.Pipeline.pass_times_s;
      let sum =
        List.fold_left (fun a (_, s) -> a +. s) 0.0 r.Triq.Pipeline.pass_times_s
      in
      Alcotest.(check bool) "sum of passes <= compile total" true
        (sum <= Obs.Clock.ns_to_s compile_span.Span.dur_ns +. 1e-6))

(* ---------- Metrics counters ---------- *)

let counter_value name =
  match List.assoc_opt name (Metrics.dump ()) with
  | Some (Metrics.Counter n) -> n
  | _ -> 0

let test_metrics_compile_counters () =
  let p = Programs.bv 4 in
  let before = counter_value "triq.compile.count" in
  let before_routing = counter_value "triq.pass.runs.routing" in
  ignore
    (Triq.Pipeline.compile_level Device.Machines.ibmq14 p.Programs.circuit
       ~level:Triq.Pipeline.OneQOptCN);
  Alcotest.(check int) "compile.count +1" (before + 1)
    (counter_value "triq.compile.count");
  Alcotest.(check int) "pass.runs.routing +1" (before_routing + 1)
    (counter_value "triq.pass.runs.routing")

(* ---------- CLI envelope ---------- *)

let test_output_envelope () =
  Alcotest.(check string)
    "envelope shape"
    {|{"ok":true,"command":"metrics","data":{"a":1,"b":"x"}}|}
    (Obs.Output.to_string ~ok:true ~command:"metrics"
       (Json.Obj [ ("a", Json.Int 1); ("b", Json.Str "x") ]));
  Alcotest.(check string)
    "raw splice"
    {|{"ok":false,"command":"lint","data":[{"pre":1}]}|}
    (Obs.Output.to_string ~ok:false ~command:"lint"
       (Json.List [ Json.Raw {|{"pre":1}|} ]))

(* ---------- Deprecated Runner.run compat wrapper ---------- *)

module Compat = struct
  [@@@alert "-deprecated"]

  (* The one sanctioned caller of the deprecated wrapper: proves it is
     exactly [simulate ~config] until it is removed. *)
  let legacy_run = Runner.run
end

let test_runner_compat_wrapper () =
  let p = Programs.bv 4 in
  let compiled =
    Triq.Pipeline.to_compiled
      (Triq.Pipeline.compile_level Device.Machines.ibmq14 p.Programs.circuit
         ~level:Triq.Pipeline.OneQOptCN)
  in
  let legacy =
    Compat.legacy_run ~seed:7 ~trials:4096 ~trajectories:60 compiled
      p.Programs.spec
  in
  let current =
    Runner.simulate
      ~config:(Runner.Config.make ~seed:7 ~trials:4096 ~trajectories:60 ())
      compiled p.Programs.spec
  in
  Alcotest.(check bool) "identical outcome" true (legacy = current)

let () =
  Alcotest.run "obs"
    [
      ( "spans",
        [
          Alcotest.test_case "nesting" `Quick test_span_nesting;
          Alcotest.test_case "records on exception" `Quick
            test_span_exception_records;
          Alcotest.test_case "pool -j 8" `Quick test_span_pool_j8;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "bucket edges" `Quick test_histogram_bucket_edges;
          Alcotest.test_case "observe" `Quick test_histogram_observe;
          Alcotest.test_case "compile counters" `Quick
            test_metrics_compile_counters;
        ] );
      ( "exporters",
        [
          Alcotest.test_case "chrome round-trip" `Quick test_chrome_roundtrip;
          Alcotest.test_case "jsonl round-trip" `Quick test_jsonl_roundtrip;
          Alcotest.test_case "text tree" `Quick test_text_tree_nesting;
        ] );
      ( "null sink",
        [
          Alcotest.test_case "no-op" `Quick test_null_sink_no_op;
          Alcotest.test_case "golden compile" `Quick
            test_null_sink_golden_compile;
        ] );
      ( "derived views",
        [
          Alcotest.test_case "pass_times_s from spans" `Quick
            test_pass_times_derived_from_spans;
        ] );
      ( "cli",
        [
          Alcotest.test_case "envelope" `Quick test_output_envelope;
          Alcotest.test_case "runner compat wrapper" `Quick
            test_runner_compat_wrapper;
        ] );
    ]
