(* Parallel-execution tests: the domain pool itself (ordering, exception
   propagation, nesting), the bit-for-bit determinism contract of the
   trajectory runner and experiment grids across pool sizes, and the
   reliability-matrix cache (cached results structurally equal to fresh
   computation). *)

module Pool = Parallel.Pool
module Machines = Device.Machines
module Reliability = Triq.Reliability
module Runner = Sim.Runner
module Programs = Bench_kit.Programs
module E = Bench_kit.Experiments

(* ---------- Pool basics ---------- *)

let test_pool_map_order () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let xs = List.init 100 Fun.id in
      Alcotest.(check (list int))
        "results in input order"
        (List.map (fun x -> x * x) xs)
        (Pool.map pool (fun x -> x * x) xs))

let test_pool_map_empty_and_single () =
  Pool.with_pool ~jobs:4 (fun pool ->
      Alcotest.(check (list int)) "empty" [] (Pool.map pool (fun x -> x) []);
      Alcotest.(check (list int)) "single" [ 7 ] (Pool.map pool (fun x -> x + 1) [ 6 ]))

let test_pool_jobs_one_inline () =
  Pool.with_pool ~jobs:1 (fun pool ->
      Alcotest.(check int) "jobs" 1 (Pool.jobs pool);
      Alcotest.(check (list int))
        "sequential degradation" [ 2; 4; 6 ]
        (Pool.map pool (fun x -> 2 * x) [ 1; 2; 3 ]))

exception Boom of int

let test_pool_exception_lowest_index () =
  Pool.with_pool ~jobs:4 (fun pool ->
      (* Several items raise; the caller must observe the lowest-index
         failure regardless of which domain hits its error first. *)
      let f x = if x mod 3 = 1 then raise (Boom x) else x in
      Alcotest.check_raises "lowest index wins" (Boom 1) (fun () ->
          ignore (Pool.map pool f (List.init 50 Fun.id))))

let test_pool_map_reduce () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let n =
        Pool.map_reduce pool
          ~map:(fun x -> x * x)
          ~reduce:( + ) ~init:0
          (List.init 101 Fun.id)
      in
      Alcotest.(check int) "sum of squares" 338350 n)

let test_pool_nested_maps () =
  (* A map whose work items themselves map on the same pool must not
     deadlock: the helping scheduler lets blocked callers drain queued
     batches. *)
  Pool.with_pool ~jobs:2 (fun pool ->
      let rows =
        Pool.map pool
          (fun i -> Pool.map pool (fun j -> (10 * i) + j) [ 0; 1; 2 ])
          [ 1; 2; 3; 4 ]
      in
      Alcotest.(check (list (list int)))
        "nested results"
        [ [ 10; 11; 12 ]; [ 20; 21; 22 ]; [ 30; 31; 32 ]; [ 40; 41; 42 ] ]
        rows)

let test_pool_default_resize () =
  let saved = Pool.default_jobs () in
  Fun.protect
    ~finally:(fun () -> Pool.set_default_jobs saved)
    (fun () ->
      Pool.set_default_jobs 3;
      Alcotest.(check int) "resized" 3 (Pool.default_jobs ());
      Alcotest.(check int) "live pool matches" 3 (Pool.jobs (Pool.default ())))

(* ---------- Trajectory-runner determinism across pool sizes ---------- *)

let compiled_bv machine n =
  let p = Programs.bv n in
  ( Triq.Pipeline.to_compiled
      (Triq.Pipeline.compile_level machine p.Programs.circuit
         ~level:Triq.Pipeline.OneQOptCN),
    p.Programs.spec )

let check_outcome_equal what (a : Runner.outcome) (b : Runner.outcome) =
  Alcotest.(check (list (pair string (float 0.0))))
    (what ^ ": distribution") a.Runner.distribution b.Runner.distribution;
  Alcotest.(check (list (pair string int)))
    (what ^ ": counts") a.Runner.counts b.Runner.counts;
  Alcotest.(check (float 0.0))
    (what ^ ": success") a.Runner.success_rate b.Runner.success_rate;
  Alcotest.(check bool)
    (what ^ ": dominant") a.Runner.dominant_correct b.Runner.dominant_correct

let test_runner_deterministic_across_jobs () =
  let compiled, spec = compiled_bv Machines.ibmq14 6 in
  Pool.with_pool ~jobs:1 (fun seq ->
      Pool.with_pool ~jobs:4 (fun par ->
          let run pool = Runner.simulate ~config:(Runner.Config.make ~trajectories:60 ~pool ()) compiled spec in
          check_outcome_equal "plain" (run seq) (run par);
          let run_t1 pool =
            Runner.simulate ~config:(Runner.Config.make ~trajectories:40 ~explicit_t1:true ~pool ()) compiled spec
          in
          check_outcome_equal "explicit t1" (run_t1 seq) (run_t1 par);
          let run_sc pool =
            Runner.simulate ~config:(Runner.Config.make ~trajectories:40 ~sample_counts:true ~pool ()) compiled spec
          in
          check_outcome_equal "sampled counts" (run_sc seq) (run_sc par)))

let test_runner_block_boundaries () =
  (* Trajectory counts around the block size (25) exercise partial final
     blocks; each must still agree across pool sizes. *)
  let compiled, spec = compiled_bv Machines.ibmq5 4 in
  Pool.with_pool ~jobs:1 (fun seq ->
      Pool.with_pool ~jobs:3 (fun par ->
          List.iter
            (fun trajectories ->
              let run pool = Runner.simulate ~config:(Runner.Config.make ~trajectories ~pool ()) compiled spec in
              check_outcome_equal
                (Printf.sprintf "%d trajectories" trajectories)
                (run seq) (run par))
            [ 1; 24; 25; 26; 50; 51 ]))

let test_density_batch_matches_sequential () =
  let pairs =
    List.map (fun n -> compiled_bv Machines.ibmq5 n) [ 3; 4 ]
    @ [ compiled_bv Machines.agave 3 ]
  in
  let sequential =
    List.map (fun (c, s) -> Sim.Density_runner.run c s) pairs
  in
  Pool.with_pool ~jobs:4 (fun pool ->
      let batched = Sim.Density_runner.run_batch ~pool pairs in
      List.iter2
        (fun (a : Sim.Density_runner.outcome) (b : Sim.Density_runner.outcome) ->
          Alcotest.(check (list (pair string (float 0.0))))
            "distribution" a.Sim.Density_runner.distribution
            b.Sim.Density_runner.distribution;
          Alcotest.(check (float 0.0))
            "success" a.Sim.Density_runner.success_rate
            b.Sim.Density_runner.success_rate;
          Alcotest.(check (float 0.0))
            "purity" a.Sim.Density_runner.purity b.Sim.Density_runner.purity)
        sequential batched)

let test_experiment_grid_deterministic () =
  (* A fig9-style grid through the process-wide default pool: the public
     knob the -j flags turn. *)
  let saved = Pool.default_jobs () in
  Fun.protect
    ~finally:(fun () -> Pool.set_default_jobs saved)
    (fun () ->
      let grid jobs =
        Pool.set_default_jobs jobs;
        E.fig9_data ~trajectories:5 ()
      in
      let seq = grid 1 in
      let par = grid 4 in
      Alcotest.(check bool) "fig9 grid identical at -j 1 and -j 4" true (seq = par))

(* ---------- Reliability cache ---------- *)

let test_cache_equals_fresh () =
  Reliability.cache_clear ();
  List.iter
    (fun machine ->
      List.iter
        (fun day ->
          List.iter
            (fun noise_aware ->
              let calibration = Device.Machine.calibration machine ~day in
              let fresh = Reliability.compute ~noise_aware machine calibration in
              let cached = Reliability.compute_cached ~noise_aware machine ~day in
              Alcotest.(check bool)
                (Printf.sprintf "%s day %d aware %b"
                   machine.Device.Machine.name day noise_aware)
                true
                (Reliability.equal cached fresh))
            [ true; false ])
        [ 0; 3 ])
    [ Machines.ibmq5; Machines.ibmq14; Machines.agave; Machines.umdti ]

let test_cache_hits_and_clear () =
  Reliability.cache_clear ();
  let h0, m0 = Reliability.cache_stats () in
  Alcotest.(check (pair int int)) "clear resets stats" (0, 0) (h0, m0);
  ignore (Reliability.compute_cached ~noise_aware:true Machines.ibmq14 ~day:1);
  ignore (Reliability.compute_cached ~noise_aware:true Machines.ibmq14 ~day:1);
  ignore (Reliability.compute_cached ~noise_aware:true Machines.ibmq14 ~day:1);
  let h, m = Reliability.cache_stats () in
  Alcotest.(check int) "one miss" 1 m;
  Alcotest.(check int) "two hits" 2 h;
  (* Different key dimensions each miss once. *)
  ignore (Reliability.compute_cached ~noise_aware:false Machines.ibmq14 ~day:1);
  ignore (Reliability.compute_cached ~noise_aware:true Machines.ibmq14 ~day:2);
  let _, m = Reliability.cache_stats () in
  Alcotest.(check int) "distinct keys miss" 3 m;
  Reliability.cache_clear ();
  Alcotest.(check (pair int int)) "cleared" (0, 0) (Reliability.cache_stats ())

let test_cache_distinguishes_same_name () =
  (* Two structurally different machines can share a name and seed; the
     cache must verify the stored machine, not trust the key alone. *)
  Reliability.cache_clear ();
  let template = Machines.ibmq5 in
  let mk n edges =
    Device.Machine.create ~name:"CacheTwin"
      ~basis:template.Device.Machine.basis
      ~topology:(Device.Topology.create n edges ~directed:false)
      ~profile:template.Device.Machine.profile
      ~seed:template.Device.Machine.seed
  in
  let a = mk 3 [ (0, 1); (1, 2) ] in
  let b = mk 4 [ (0, 1); (1, 2); (2, 3); (3, 0) ] in
  Alcotest.(check string)
    "same name" a.Device.Machine.name b.Device.Machine.name;
  let ra = Reliability.compute_cached ~noise_aware:true a ~day:0 in
  let rb = Reliability.compute_cached ~noise_aware:true b ~day:0 in
  let fresh_b =
    Reliability.compute ~noise_aware:true b
      (Device.Machine.calibration b ~day:0)
  in
  Alcotest.(check bool) "b not served a's entry" true (Reliability.equal rb fresh_b);
  Alcotest.(check bool) "a and b differ" false (Reliability.equal ra rb)

let test_edge_reliability_uncoupled () =
  let machine = Machines.ibmq14 in
  let calibration = Device.Machine.calibration machine ~day:0 in
  let r = Reliability.compute ~noise_aware:true machine calibration in
  let coupled =
    match Device.Topology.edges machine.Device.Machine.topology with
    | (a, b) :: _ -> (a, b)
    | [] -> Alcotest.fail "no edges"
  in
  Alcotest.(check bool)
    "coupled pair positive" true
    (Reliability.edge_reliability r (fst coupled) (snd coupled) > 0.0);
  (* Qubits 0 and 7 are not adjacent on the Melbourne lattice. *)
  Alcotest.check_raises "uncoupled pair raises" Not_found (fun () ->
      ignore (Reliability.edge_reliability r 0 7))

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "map order" `Quick test_pool_map_order;
          Alcotest.test_case "empty and single" `Quick test_pool_map_empty_and_single;
          Alcotest.test_case "jobs=1 inline" `Quick test_pool_jobs_one_inline;
          Alcotest.test_case "exception lowest index" `Quick
            test_pool_exception_lowest_index;
          Alcotest.test_case "map_reduce" `Quick test_pool_map_reduce;
          Alcotest.test_case "nested maps" `Quick test_pool_nested_maps;
          Alcotest.test_case "default resize" `Quick test_pool_default_resize;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "runner across jobs" `Quick
            test_runner_deterministic_across_jobs;
          Alcotest.test_case "block boundaries" `Quick test_runner_block_boundaries;
          Alcotest.test_case "density batch" `Quick
            test_density_batch_matches_sequential;
          Alcotest.test_case "experiment grid" `Quick
            test_experiment_grid_deterministic;
        ] );
      ( "reliability cache",
        [
          Alcotest.test_case "cached equals fresh" `Quick test_cache_equals_fresh;
          Alcotest.test_case "hits and clear" `Quick test_cache_hits_and_clear;
          Alcotest.test_case "same-name machines" `Quick
            test_cache_distinguishes_same_name;
          Alcotest.test_case "uncoupled raises" `Quick
            test_edge_reliability_uncoupled;
        ] );
    ]
