(* Tests for the pass manager: schedule/legacy equivalence (the golden
   gate for the Pipeline.compile compatibility wrapper), unified pass
   naming, schedule editing, and custom passes.

   This file deliberately keeps calling the deprecated [Pipeline.compile]
   wrapper: it IS the golden gate proving the wrapper and the schedule
   driver produce identical executables, so it must not be migrated. *)
[@@@alert "-deprecated"]

module Circuit = Ir.Circuit
module Machine = Device.Machine
module Machines = Device.Machines
module Pipeline = Triq.Pipeline
module Pass = Triq.Pass
module Config = Triq.Pass.Config
module Schedule = Triq.Pass.Schedule
module Programs = Bench_kit.Programs

let benchmarks = [ Programs.bv 4; Programs.toffoli; Programs.or_gate ]

let contains s sub =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  go 0

let check_identical label (a : Pipeline.t) (b : Pipeline.t) =
  Alcotest.(check bool)
    (label ^ ": hardware circuit identical")
    true
    (a.Pipeline.hardware = b.Pipeline.hardware);
  Alcotest.(check bool)
    (label ^ ": initial placement identical")
    true
    (a.Pipeline.initial_placement = b.Pipeline.initial_placement);
  Alcotest.(check bool)
    (label ^ ": final placement identical")
    true
    (a.Pipeline.final_placement = b.Pipeline.final_placement);
  Alcotest.(check bool)
    (label ^ ": readout map identical")
    true
    (a.Pipeline.readout_map = b.Pipeline.readout_map);
  Alcotest.(check int) (label ^ ": swap count") a.Pipeline.swap_count
    b.Pipeline.swap_count;
  Alcotest.(check int) (label ^ ": 2Q count") a.Pipeline.two_q_count
    b.Pipeline.two_q_count;
  Alcotest.(check int) (label ^ ": pulse count") a.Pipeline.pulse_count
    b.Pipeline.pulse_count;
  Alcotest.(check int) (label ^ ": flipped CNOTs") a.Pipeline.flipped_cnots
    b.Pipeline.flipped_cnots;
  if abs_float (a.Pipeline.esp -. b.Pipeline.esp) > 1e-12 then
    Alcotest.failf "%s: ESP differs: %.15f vs %.15f" label a.Pipeline.esp
      b.Pipeline.esp

(* The equivalence gate: the schedule-driven driver and the legacy
   [Pipeline.compile] path agree exactly, for every machine x level x
   benchmark (and the compat wrapper's output is internally consistent:
   per-pass times sum to at most the total). *)
let test_schedule_equivalence () =
  List.iter
    (fun machine ->
      List.iter
        (fun (p : Programs.t) ->
          if Machine.fits machine p.Programs.circuit then
            List.iter
              (fun level ->
                let label =
                  Printf.sprintf "%s/%s/%s" machine.Machine.name p.Programs.name
                    (Pipeline.level_name level)
                in
                let legacy = Pipeline.compile machine p.Programs.circuit ~level in
                let scheduled =
                  Pipeline.compile_schedule machine p.Programs.circuit
                    (Schedule.of_level level)
                in
                check_identical label legacy scheduled;
                let total =
                  List.fold_left
                    (fun acc (_, t) -> acc +. t)
                    0.0 legacy.Pipeline.pass_times_s
                in
                Alcotest.(check bool)
                  (label ^ ": pass times within compile time")
                  true
                  (total <= legacy.Pipeline.compile_time_s +. 1e-6))
              Pipeline.all_levels)
        benchmarks)
    Machines.all

(* Router and peephole ablations exercise the non-default wrapper paths:
   the optional-argument spelling and the config/schedule spelling must
   agree too. *)
let test_ablation_equivalence () =
  let machine = Machines.ibmq14 in
  List.iter
    (fun (p : Programs.t) ->
      let circuit = p.Programs.circuit in
      let legacy_peep =
        Pipeline.compile ~peephole:true machine circuit ~level:Pipeline.OneQOptCN
      in
      let config = { Config.default with Config.peephole = true } in
      check_identical (p.Programs.name ^ " peephole") legacy_peep
        (Pipeline.compile_schedule ~config machine circuit
           (Schedule.of_level ~config Pipeline.OneQOptCN));
      let legacy_look =
        Pipeline.compile ~router:`Lookahead machine circuit
          ~level:Pipeline.OneQOptCN
      in
      let config = { Config.default with Config.router = Config.Lookahead } in
      check_identical (p.Programs.name ^ " lookahead") legacy_look
        (Pipeline.compile_schedule ~config machine circuit
           (Schedule.of_level ~config Pipeline.OneQOptCN)))
    benchmarks

(* Satellite: pass-name unification. The timing keys, the schedule's pass
   names, and the registered catalog must be the same identifiers. *)
let test_pass_name_sets_match () =
  let catalog_names = List.map fst Pass.catalog in
  List.iter
    (fun level ->
      let schedule = Schedule.of_level level in
      let r = Pipeline.compile Machines.ibmq5 (Programs.bv 4).Programs.circuit ~level in
      Alcotest.(check (list string))
        (Pipeline.level_name level ^ ": timing keys = schedule pass names")
        (Schedule.pass_names schedule)
        (List.map fst r.Pipeline.pass_times_s);
      List.iter
        (fun name ->
          if not (List.mem name catalog_names) then
            Alcotest.failf "%s: schedule pass %S not in Pass.catalog"
              (Pipeline.level_name level) name)
        (Schedule.pass_names schedule))
    Pipeline.all_levels;
  (* The peephole variant's key is registered too. *)
  let config = { Config.default with Config.peephole = true } in
  List.iter
    (fun name ->
      if not (List.mem name catalog_names) then
        Alcotest.failf "peephole schedule pass %S not in Pass.catalog" name)
    (Schedule.pass_names (Schedule.of_level ~config Pipeline.OneQOptCN));
  List.iter
    (fun name ->
      if not (List.mem name catalog_names) then
        Alcotest.failf "optional pass %S not in Pass.catalog" name)
    Pass.optional_names

(* And the validator attributes violations to exactly those names: a
   custom pass registered with Pass.make that corrupts the state sees the
   Violation carry its own name. *)
let test_violation_names_pass () =
  let evil =
    Pass.make ~name:"evil"
      ~checks:(fun s ->
        [
          Analysis.Check.placement ~layer:"evil" ~what:"final placement"
            ~n_hardware:(Machine.n_qubits s.Pass.machine)
            s.Pass.final_placement;
        ])
      (fun s ->
        {
          s with
          Pass.final_placement =
            Array.make (Array.length s.Pass.final_placement) 0;
        })
  in
  let schedule = Schedule.of_level Pipeline.OneQOptCN in
  let schedule = { schedule with Schedule.passes = schedule.Schedule.passes @ [ evil ] } in
  let config = { Config.default with Config.validate = Config.Shape } in
  match
    Pipeline.compile_schedule ~config Machines.ibmq5
      (Programs.bv 4).Programs.circuit schedule
  with
  | _ -> Alcotest.fail "corrupting pass was not caught"
  | exception Analysis.Diag.Violation (pass, diags) ->
    Alcotest.(check string) "violation names the pass" "evil" pass;
    Alcotest.(check bool) "diagnostics attached" true (diags <> []);
    (* Without the validator the same schedule runs to completion. *)
    ignore
      (Pipeline.compile_schedule Machines.ibmq5 (Programs.bv 4).Programs.circuit
         schedule)

let test_schedule_disable () =
  let config = { Config.default with Config.peephole = true } in
  let schedule = Schedule.of_level ~config Pipeline.OneQOptCN in
  (match Schedule.disable schedule "peephole" with
  | Error msg -> Alcotest.failf "disable peephole: %s" msg
  | Ok s ->
    Alcotest.(check (list string))
      "peephole removed"
      (Schedule.pass_names (Schedule.of_level Pipeline.OneQOptCN))
      (Schedule.pass_names s));
  (match Schedule.disable schedule "routing" with
  | Error msg ->
    Alcotest.(check bool) "required error mentions pass" true
      (contains msg "routing")
  | Ok _ -> Alcotest.fail "disabling a required pass must fail");
  match Schedule.disable schedule "bogus" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "disabling an unknown pass must fail"

(* Disabling mapping keeps the identity placement: same output as level
   1QOpt, which uses the trivial mapper. *)
let test_schedule_disable_mapping () =
  let machine = Machines.ibmq14 in
  let circuit = (Programs.bv 4).Programs.circuit in
  match Schedule.disable (Schedule.of_level Pipeline.OneQOptC) "mapping" with
  | Error msg -> Alcotest.failf "disable mapping: %s" msg
  | Ok schedule ->
    check_identical "no-mapping = trivial placement"
      (Pipeline.compile machine circuit ~level:Pipeline.OneQOpt)
      (Pipeline.compile_schedule machine circuit schedule)

let test_schedule_make () =
  let names =
    [
      "flatten"; "reliability"; "mapping"; "routing"; "swap-expansion";
      "orientation"; "translation"; "oneq"; "readout";
    ]
  in
  (match Schedule.make ~level:Pipeline.OneQOptCN names with
  | Error msg -> Alcotest.failf "make: %s" msg
  | Ok schedule ->
    check_identical "make = of_level"
      (Pipeline.compile Machines.ibmq14 (Programs.bv 4).Programs.circuit
         ~level:Pipeline.OneQOptCN)
      (Pipeline.compile_schedule Machines.ibmq14 (Programs.bv 4).Programs.circuit
         schedule));
  (match Schedule.make ~level:Pipeline.OneQOptCN [ "flatten"; "bogus" ] with
  | Error msg ->
    Alcotest.(check bool) "unknown pass error lists names" true
      (contains msg "flatten")
  | Ok _ -> Alcotest.fail "unknown pass name must fail");
  match Schedule.make ~level:Pipeline.OneQOptCN [] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty schedule must fail"

let test_config_router_parsing () =
  Alcotest.(check bool) "default" true
    (Config.router_of_string "Default" = Some Config.Default);
  Alcotest.(check bool) "lookahead" true
    (Config.router_of_string "LOOKAHEAD" = Some Config.Lookahead);
  Alcotest.(check bool) "unknown" true (Config.router_of_string "bogus" = None);
  List.iter
    (fun s ->
      if Config.router_of_string s = None then
        Alcotest.failf "router_names entry %S does not parse" s)
    Config.router_names

(* The baselines run the shared stages through the same driver, so their
   executables now carry per-pass times under the canonical names. *)
let test_baseline_pass_times () =
  let machine = Machines.ibmq14 in
  let compiled = Baselines.Qiskit_like.compile machine (Programs.bv 4).Programs.circuit in
  let names = List.map fst compiled.Triq.Compiled.pass_times_s in
  Alcotest.(check (list string)) "baseline tail pass names"
    [ "flatten"; "swap-expansion"; "orientation"; "translation"; "oneq"; "readout" ]
    names;
  let catalog_names = List.map fst Pass.catalog in
  List.iter
    (fun name ->
      if not (List.mem name catalog_names) then
        Alcotest.failf "baseline pass %S not in Pass.catalog" name)
    names

let () =
  Alcotest.run "passes"
    [
      ( "equivalence",
        [
          Alcotest.test_case "schedule = legacy (machines x levels x benchmarks)"
            `Quick test_schedule_equivalence;
          Alcotest.test_case "ablations" `Quick test_ablation_equivalence;
        ] );
      ( "naming",
        [
          Alcotest.test_case "timing keys = schedule = catalog" `Quick
            test_pass_name_sets_match;
          Alcotest.test_case "violations name the pass" `Quick
            test_violation_names_pass;
          Alcotest.test_case "baseline pass times" `Quick test_baseline_pass_times;
        ] );
      ( "schedules",
        [
          Alcotest.test_case "disable" `Quick test_schedule_disable;
          Alcotest.test_case "disable mapping = trivial" `Quick
            test_schedule_disable_mapping;
          Alcotest.test_case "make" `Quick test_schedule_make;
          Alcotest.test_case "router parsing" `Quick test_config_router_parsing;
        ] );
    ]
