(* The differential-testing harness itself, plus pinned fuzz regressions.

   The regression cases below are shrunk counterexamples printed by
   `triqc fuzz` against historical bugs (reproduced by reverting the fix
   and re-running the seed). They stay pinned so the bugs cannot return
   silently even if the generator distribution drifts. *)

module Gen = Proptest.Gen
module Shrink = Proptest.Shrink
module Harness = Proptest.Harness
module Oracle = Proptest.Oracle
module Rng = Mathkit.Rng
module Circuit = Ir.Circuit

(* ---------- pinned fuzz regressions ---------- *)

(* Shrunk by `triqc fuzz --seed 42 --oracle roundtrip` against the quil
   parser before tab separators were normalized: a whitespace-mangled
   "MEASURE\t0\tro[0]" no longer matched the "MEASURE " prefix. *)
let regression_quil_tab_measure () =
  let open Ir.Gate in
  let circuit = Ir.Circuit.create 1 [ Measure 0 ] in
  match Oracle.check_roundtrip Oracle.Quil circuit with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

(* Shrunk by the same seed against a quil emitter printing RZ angles with
   %.5f instead of %.17g: any angle needing more than 5 decimals came
   back off by more than 1 ulp. *)
let regression_quil_angle_precision () =
  let open Ir.Gate in
  let circuit =
    Ir.Circuit.create 1 [ One (Rz 5.3879623764594055, 0) ]
  in
  match Oracle.check_roundtrip Oracle.Quil circuit with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

(* Near-miss the shrinker walks into: a gate-free circuit has no Quil/TI
   representation (their parsers reject empty programs by design), so the
   oracle must treat it as out of domain rather than a failure. *)
let regression_empty_circuit_vacuous () =
  let circuit = Ir.Circuit.create 1 [] in
  List.iter
    (fun vendor ->
      match Oracle.check_roundtrip vendor circuit with
      | Ok () -> ()
      | Error msg ->
        Alcotest.failf "%s rejected the empty circuit: %s"
          (Oracle.vendor_name vendor) msg)
    [ Oracle.Quil; Oracle.Ti ]

(* The statevector/density disagreement the sampler bug family lives
   next to: |1> must never sample outcome 0. Kept here in oracle form
   (the unit-level CDF tests live in test_sim.ml). *)
let regression_deterministic_state_semantics () =
  let open Ir.Gate in
  let circuit = Ir.Circuit.create 2 [ One (X, 0); Two (Cnot, 0, 1) ] in
  match Oracle.check_semantic circuit with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

(* ---------- generator properties ---------- *)

let test_gen_deterministic () =
  (* The same seed must generate the same case stream — the whole replay
     story depends on it. *)
  let draw seed =
    let rng = Rng.create seed in
    List.init 20 (fun _ -> Gen.circuit ~max_qubits:5 ~max_gates:12 (Rng.split rng))
  in
  let a = draw 7 and b = draw 7 in
  Alcotest.(check bool) "same seed, same circuits" true
    (List.for_all2 Circuit.equal a b);
  let c = draw 8 in
  Alcotest.(check bool) "different seed differs somewhere" false
    (List.for_all2 Circuit.equal a c)

let test_gen_wellformed () =
  let rng = Rng.create 11 in
  for _ = 1 to 200 do
    (* Circuit.create validates qubit ranges and arities: generating is
       already the assertion. Check the extra invariants on top. *)
    let c = Gen.circuit ~max_qubits:6 ~max_gates:16 (Rng.split rng) in
    Alcotest.(check bool) "qubit count in range" true
      (c.Circuit.n_qubits >= 1 && c.Circuit.n_qubits <= 6);
    let measured = Circuit.measured_qubits c in
    Alcotest.(check bool) "measures are distinct" true
      (List.length (List.sort_uniq compare measured) = List.length measured)
  done

let test_gen_vendor_visibility () =
  let rng = Rng.create 13 in
  for _ = 1 to 100 do
    let c = Gen.rigetti_visible_circuit ~max_qubits:4 ~max_gates:10 (Rng.split rng) in
    List.iter
      (fun (g : Ir.Gate.t) ->
        match g with
        | One (Rz _, _) | One (Rx _, _)
        | Two (Cz, _, _) | Two (Iswap, _, _)
        | Measure _ -> ()
        | other ->
          Alcotest.failf "non-Rigetti gate generated: %s" (Ir.Gate.to_string other))
      c.Circuit.gates;
    (* Quil infers qubit count from use: the generator must touch the top
       qubit or the round-trip comparison is ill-posed. *)
    Alcotest.(check bool) "top qubit used" true
      (List.mem (c.Circuit.n_qubits - 1) (Circuit.used_qubits c))
  done

(* ---------- shrinking ---------- *)

let test_shrink_reaches_minimum () =
  (* Property: "no circuit contains a CNOT". The minimum counterexample
     is a single CNOT gate; the shrinker must find it from any start. *)
  let prop (c : Circuit.t) =
    if
      List.exists
        (function Ir.Gate.Two (Ir.Gate.Cnot, _, _) -> true | _ -> false)
        c.Circuit.gates
    then Error "contains a CNOT"
    else Ok ()
  in
  let spec =
    {
      Harness.name = "no-cnot";
      gen = Gen.circuit ~max_qubits:5 ~max_gates:20;
      shrink = Shrink.circuit;
      show = (fun c -> Format.asprintf "%a" Circuit.pp c);
      prop;
    }
  in
  let outcome = Harness.run ~seed:3 ~cases:200 spec in
  match outcome.Harness.failure with
  | None -> Alcotest.fail "expected a CNOT-bearing circuit within 200 cases"
  | Some f ->
    let shrunk = f.Harness.shrunk in
    Alcotest.(check int) "shrunk to a single gate" 1
      (List.length shrunk.Circuit.gates);
    Alcotest.(check bool) "that gate is the CNOT" true
      (match shrunk.Circuit.gates with
      | [ Ir.Gate.Two (Ir.Gate.Cnot, _, _) ] -> true
      | _ -> false)

let test_shrink_makes_progress () =
  (* Every candidate a circuit shrinker offers must differ from its
     input, or the minimizer could cycle without converging. *)
  let rng = Rng.create 17 in
  for _ = 1 to 50 do
    let c = Gen.circuit ~max_qubits:5 ~max_gates:12 (Rng.split rng) in
    Seq.iter
      (fun c' ->
        if Circuit.equal c c' then
          Alcotest.failf "shrink candidate equals its input: %s"
            (Format.asprintf "%a" Circuit.pp c))
      (Shrink.circuit c)
  done

(* ---------- harness replay ---------- *)

let test_harness_replay_stable () =
  (* Same seed, same spec -> identical outcome, including the failing
     case index. *)
  let prop (c : Circuit.t) =
    if List.length c.Circuit.gates > 10 then Error "too many gates" else Ok ()
  in
  let spec =
    {
      Harness.name = "replay";
      gen = Gen.circuit ~max_qubits:4 ~max_gates:20;
      shrink = Shrink.circuit;
      show = (fun c -> Format.asprintf "%a" Circuit.pp c);
      prop;
    }
  in
  let a = Harness.run ~seed:23 ~cases:100 spec in
  let b = Harness.run ~seed:23 ~cases:100 spec in
  match (a.Harness.failure, b.Harness.failure) with
  | Some fa, Some fb ->
    Alcotest.(check int) "same failing index" fa.Harness.case_index
      fb.Harness.case_index;
    Alcotest.(check bool) "same shrunk circuit" true
      (Circuit.equal fa.Harness.shrunk fb.Harness.shrunk)
  | None, None -> Alcotest.fail "expected the >10-gate property to fail"
  | _ -> Alcotest.fail "replay diverged: one run failed, the other passed"

(* ---------- bounded oracle smoke ---------- *)

(* A small fixed-seed sweep of the real catalog on every runtest: catches
   regressions in the oracles themselves, not just in the stack. Case
   counts are bounded to keep runtest fast. *)
let test_oracle_smoke () =
  List.iter
    (fun (name, _) ->
      match Oracle.run ~seed:42 ~cases:25 name with
      | Error msg -> Alcotest.fail msg
      | Ok r -> (
        match r.Oracle.failure with
        | None -> ()
        | Some f ->
          Alcotest.failf "oracle %s failed at case %d: %s\n%s" name
            f.Oracle.case_index f.Oracle.message f.Oracle.repro))
    Oracle.catalog

let () =
  Alcotest.run "proptest"
    [
      ( "regressions",
        [
          Alcotest.test_case "quil tab measure" `Quick regression_quil_tab_measure;
          Alcotest.test_case "quil angle precision" `Quick
            regression_quil_angle_precision;
          Alcotest.test_case "empty circuit vacuous" `Quick
            regression_empty_circuit_vacuous;
          Alcotest.test_case "deterministic-state semantics" `Quick
            regression_deterministic_state_semantics;
        ] );
      ( "generators",
        [
          Alcotest.test_case "deterministic" `Quick test_gen_deterministic;
          Alcotest.test_case "well-formed" `Quick test_gen_wellformed;
          Alcotest.test_case "vendor visibility" `Quick test_gen_vendor_visibility;
        ] );
      ( "shrinking",
        [
          Alcotest.test_case "reaches minimum" `Quick test_shrink_reaches_minimum;
          Alcotest.test_case "makes progress" `Quick test_shrink_makes_progress;
        ] );
      ("harness", [ Alcotest.test_case "replay stable" `Quick test_harness_replay_stable ]);
      ("smoke", [ Alcotest.test_case "oracle catalog" `Quick test_oracle_smoke ]);
    ]
