(* Pulse-layer tests: waveform envelopes, schedule packing invariants,
   per-vendor gate lowering, and consistency between pulse-level timing
   and the gate-level duration model. *)

module G = Ir.Gate
module Circuit = Ir.Circuit
module Machines = Device.Machines
module Machine = Device.Machine
module Pipeline = Triq.Pipeline
module Waveform = Pulse.Waveform
module Schedule = Pulse.Schedule
module Lower = Pulse.Lower

let gaussian duration =
  Waveform.create ~name:"g" ~shape:(Waveform.Gaussian { sigma_ns = duration /. 4.0 })
    ~duration_ns:duration ~amplitude:1.0 ~phase:0.0

(* ---------- Waveform ---------- *)

let test_waveform_validation () =
  let raises f = try ignore (f ()); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "zero duration" true
    (raises (fun () -> gaussian 0.0));
  Alcotest.(check bool) "amplitude > 1" true
    (raises (fun () ->
         Waveform.create ~name:"x" ~shape:Waveform.Constant ~duration_ns:10.0
           ~amplitude:1.5 ~phase:0.0));
  Alcotest.(check bool) "flat width > duration" true
    (raises (fun () ->
         Waveform.create ~name:"x"
           ~shape:(Waveform.Gaussian_square { sigma_ns = 1.0; width_ns = 20.0 })
           ~duration_ns:10.0 ~amplitude:0.5 ~phase:0.0))

let test_waveform_envelope_shapes () =
  let g = gaussian 100.0 in
  (* Peak at centre, symmetric, small at edges. *)
  Alcotest.(check (float 1e-9)) "peak" 1.0 (Waveform.sample g 50.0);
  Alcotest.(check (float 1e-9)) "symmetry" (Waveform.sample g 30.0) (Waveform.sample g 70.0);
  Alcotest.(check bool) "edges low" true (Waveform.sample g 0.0 < 0.2);
  Alcotest.(check (float 1e-12)) "outside" 0.0 (Waveform.sample g 150.0);
  let ft =
    Waveform.create ~name:"ft"
      ~shape:(Waveform.Gaussian_square { sigma_ns = 10.0; width_ns = 50.0 })
      ~duration_ns:100.0 ~amplitude:0.8 ~phase:0.0
  in
  (* Flat in the middle at full amplitude. *)
  Alcotest.(check (float 1e-9)) "flat mid" 0.8 (Waveform.sample ft 50.0);
  Alcotest.(check (float 1e-9)) "flat elsewhere" 0.8 (Waveform.sample ft 40.0)

let test_waveform_area_scales () =
  let a1 = Waveform.area (gaussian 100.0) in
  let a2 = Waveform.area (gaussian 200.0) in
  Alcotest.(check bool) "longer pulse, more area" true (a2 > 1.9 *. a1);
  let const =
    Waveform.create ~name:"c" ~shape:Waveform.Constant ~duration_ns:80.0
      ~amplitude:0.5 ~phase:0.0
  in
  Alcotest.(check (float 0.5)) "constant area" 40.0 (Waveform.area const)

(* ---------- Schedule ---------- *)

let test_schedule_asap_packing () =
  let s = Schedule.empty in
  let s, t0 = Schedule.append s ~channels:[ Schedule.Drive 0 ] (Schedule.Play (gaussian 100.0)) in
  let s, t1 = Schedule.append s ~channels:[ Schedule.Drive 1 ] (Schedule.Play (gaussian 100.0)) in
  let s, t2 = Schedule.append s ~channels:[ Schedule.Drive 0 ] (Schedule.Play (gaussian 50.0)) in
  Alcotest.(check (float 1e-9)) "first at 0" 0.0 t0;
  Alcotest.(check (float 1e-9)) "parallel channel at 0" 0.0 t1;
  Alcotest.(check (float 1e-9)) "same channel serialized" 100.0 t2;
  Alcotest.(check (float 1e-9)) "duration" 150.0 (Schedule.duration_ns s)

let test_schedule_multi_channel_barrier () =
  let s = Schedule.empty in
  let s, _ = Schedule.append s ~channels:[ Schedule.Drive 0 ] (Schedule.Play (gaussian 100.0)) in
  (* A 2-channel instruction must wait for both channels. *)
  let s, t =
    Schedule.append s
      ~channels:[ Schedule.Drive 0; Schedule.Drive 1 ]
      (Schedule.Play (gaussian 10.0))
  in
  Alcotest.(check (float 1e-9)) "starts after busy channel" 100.0 t;
  Alcotest.(check bool) "well formed" true (Schedule.no_overlap s)

let test_schedule_frame_change_instant () =
  let s = Schedule.empty in
  let s, _ = Schedule.append s ~channels:[ Schedule.Drive 0 ] (Schedule.Frame_change 0.3) in
  let s, t = Schedule.append s ~channels:[ Schedule.Drive 0 ] (Schedule.Play (gaussian 10.0)) in
  Alcotest.(check (float 1e-9)) "fc takes no time" 0.0 t;
  Alcotest.(check int) "one fc" 1 (Schedule.frame_change_count s);
  Alcotest.(check int) "one play" 1 (Schedule.play_count s)

let test_schedule_control_channel_normalized () =
  Alcotest.(check bool) "normalized equal" true
    (Schedule.normalize_channel (Schedule.Control (3, 1))
    = Schedule.normalize_channel (Schedule.Control (1, 3)))

(* ---------- Lowering ---------- *)

let compiled_for machine program =
  Pipeline.to_compiled (Pipeline.compile_level machine program ~level:Pipeline.OneQOptCN)

let bv4 = (Bench_kit.Programs.bv 4).Bench_kit.Programs.circuit

let test_lower_all_vendors_wellformed () =
  List.iter
    (fun machine ->
      let schedule = Lower.of_compiled (compiled_for machine bv4) in
      Alcotest.(check bool)
        (machine.Machine.name ^ " no overlap")
        true (Schedule.no_overlap schedule);
      Alcotest.(check bool)
        (machine.Machine.name ^ " nonempty")
        true
        (Schedule.duration_ns schedule > 0.0))
    Machines.all

let test_lower_virtual_z_is_frame_change () =
  (* A pure-Z circuit lowers to frame changes only: zero pulses. *)
  let c = Circuit.create 1 [ G.One (G.U1 0.7, 0) ] in
  let schedule = Lower.of_circuit Machines.ibmq5 c in
  Alcotest.(check int) "no plays" 0 (Schedule.play_count schedule);
  Alcotest.(check int) "one fc" 1 (Schedule.frame_change_count schedule);
  Alcotest.(check (float 1e-9)) "zero duration" 0.0 (Schedule.duration_ns schedule)

let test_lower_pulse_counts_match_gateset () =
  (* The pulse schedule's play count equals the gate-level pulse metric
     for 1Q gates (2Q gates add their own tones). *)
  let c =
    Circuit.create 2
      [ G.One (G.U1 0.1, 0); G.One (G.U2 (0.1, 0.2), 0); G.One (G.U3 (1.0, 0.2, 0.3), 1) ]
  in
  let schedule = Lower.of_circuit Machines.ibmq5 c in
  Alcotest.(check int) "0 + 1 + 2 pulses" 3 (Schedule.play_count schedule)

let test_lower_duration_tracks_gate_model () =
  (* Pulse-level duration must be within 2x of the gate-level critical
     path estimate (they share the same per-gate times). *)
  List.iter
    (fun machine ->
      let compiled = compiled_for machine bv4 in
      let schedule = Lower.of_compiled compiled in
      let body = Circuit.body compiled.Triq.Compiled.hardware in
      let gate_level_us = Machine.duration_us machine body in
      let pulse_level_us = Schedule.duration_ns (Lower.of_circuit machine body) /. 1000.0 in
      ignore schedule;
      let ratio = pulse_level_us /. Float.max gate_level_us 1e-9 in
      if ratio < 0.4 || ratio > 2.5 then
        Alcotest.failf "%s: pulse %.2fus vs gate %.2fus" machine.Machine.name
          pulse_level_us gate_level_us)
    [ Machines.ibmq5; Machines.agave; Machines.umdti ]

let test_lower_rejects_non_visible () =
  let c = Circuit.create 1 [ G.One (G.H, 0) ] in
  Alcotest.(check bool) "H rejected for IBM" true
    (try ignore (Lower.of_circuit Machines.ibmq5 c); false
     with Invalid_argument _ -> true)

let test_lower_umd_rotation_duration_scales () =
  let short = Circuit.create 1 [ G.One (G.Rxy (0.2, 0.0), 0) ] in
  let long = Circuit.create 1 [ G.One (G.Rxy (Float.pi, 0.0), 0) ] in
  let d c = Schedule.duration_ns (Lower.of_circuit Machines.umdti c) in
  Alcotest.(check bool) "angle-proportional" true (d long > 4.0 *. d short)

let test_lower_measure_acquires () =
  let c = Circuit.create 1 [ G.Measure 0 ] in
  let schedule = Lower.of_circuit Machines.umdti c in
  Alcotest.(check (float 1.0)) "ion readout window" 200_000.0
    (Schedule.duration_ns schedule)

(* ---------- Emit ---------- *)

let contains hay needle =
  let h = String.length hay and n = String.length needle in
  let rec scan i = i + n <= h && (String.sub hay i n = needle || scan (i + 1)) in
  n = 0 || scan 0

let test_emit_openpulse_json () =
  let schedule = Lower.of_compiled (compiled_for Machines.ibmq5 bv4) in
  let json = Pulse.Emit.openpulse_json schedule in
  Alcotest.(check bool) "schema" true (contains json "openpulse-0.1");
  Alcotest.(check bool) "has plays" true (contains json "\"name\": \"play\"");
  Alcotest.(check bool) "has fcs" true (contains json "\"name\": \"fc\"");
  Alcotest.(check bool) "has acquire" true (contains json "\"name\": \"acquire\"");
  Alcotest.(check bool) "drag pulses on ibm" true (contains json "\"shape\": \"drag\"")

(* ---------- qcheck ---------- *)

let schedule_gen =
  QCheck.Gen.(
    let instr =
      oneof
        [
          map (fun d -> `Play (10.0 +. (190.0 *. d))) (float_range 0.0 1.0);
          map (fun p -> `Fc p) (float_range (-3.0) 3.0);
        ]
    in
    let step = pair (int_range 0 3) instr in
    map
      (fun steps ->
        List.fold_left
          (fun sched (q, instr) ->
            let instruction =
              match instr with
              | `Play d -> Schedule.Play (gaussian d)
              | `Fc p -> Schedule.Frame_change p
            in
            fst (Schedule.append sched ~channels:[ Schedule.Drive q ] instruction))
          Schedule.empty steps)
      (list_size (int_range 0 30) step))

let prop_schedules_never_overlap =
  QCheck.Test.make ~count:200 ~name:"ASAP schedules never overlap"
    (QCheck.make schedule_gen) Schedule.no_overlap

let prop_duration_monotone =
  QCheck.Test.make ~count:100 ~name:"appending never shortens a schedule"
    (QCheck.make schedule_gen) (fun sched ->
      let d0 = Schedule.duration_ns sched in
      let sched', _ =
        Schedule.append sched ~channels:[ Schedule.Drive 0 ] (Schedule.Play (gaussian 25.0))
      in
      Schedule.duration_ns sched' >= d0)

let visible_circuit_gen =
  (* Random IBM-visible circuits over 4 qubits. *)
  QCheck.Gen.(
    let n = 4 in
    let gate =
      oneof
        [
          map2 (fun q l -> G.One (G.U1 l, q)) (int_range 0 (n - 1)) (float_range 0.0 6.28);
          map2
            (fun q l -> G.One (G.U2 (l, 0.5), q))
            (int_range 0 (n - 1)) (float_range 0.0 6.28);
          map2
            (fun q l -> G.One (G.U3 (l, 0.2, 0.4), q))
            (int_range 0 (n - 1)) (float_range 0.0 3.1);
          map2
            (fun a d -> G.Two (G.Cnot, a, (a + 1 + d) mod n))
            (int_range 0 (n - 1)) (int_range 0 (n - 2));
          map (fun q -> G.Measure q) (int_range 0 (n - 1));
        ]
    in
    map (fun gates ->
        (* Keep at most one measure per qubit, as the IR requires. *)
        let seen = Array.make n false in
        let cleaned =
          List.filter
            (fun g ->
              match (g : G.t) with
              | G.Measure q ->
                if seen.(q) then false
                else begin
                  seen.(q) <- true;
                  true
                end
              | _ -> true)
            gates
        in
        Circuit.create n cleaned)
      (list_size (int_range 1 25) gate))

let prop_lowering_wellformed =
  QCheck.Test.make ~count:100 ~name:"random visible circuits lower to valid schedules"
    (QCheck.make visible_circuit_gen) (fun c ->
      let schedule = Lower.of_circuit Machines.ibmq16 c in
      Schedule.no_overlap schedule
      && Schedule.duration_ns schedule >= 0.0
      && Schedule.play_count schedule
         >= Device.Gateset.circuit_pulse_count Device.Gateset.Ibm_visible c)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_schedules_never_overlap; prop_duration_monotone; prop_lowering_wellformed ]

let () =
  Alcotest.run "pulse"
    [
      ( "waveform",
        [
          Alcotest.test_case "validation" `Quick test_waveform_validation;
          Alcotest.test_case "envelopes" `Quick test_waveform_envelope_shapes;
          Alcotest.test_case "area" `Quick test_waveform_area_scales;
        ] );
      ( "schedule",
        [
          Alcotest.test_case "asap packing" `Quick test_schedule_asap_packing;
          Alcotest.test_case "multi-channel barrier" `Quick test_schedule_multi_channel_barrier;
          Alcotest.test_case "frame changes instant" `Quick test_schedule_frame_change_instant;
          Alcotest.test_case "channel normalization" `Quick
            test_schedule_control_channel_normalized;
        ] );
      ( "lowering",
        [
          Alcotest.test_case "all vendors" `Quick test_lower_all_vendors_wellformed;
          Alcotest.test_case "virtual z" `Quick test_lower_virtual_z_is_frame_change;
          Alcotest.test_case "pulse counts" `Quick test_lower_pulse_counts_match_gateset;
          Alcotest.test_case "duration consistency" `Quick test_lower_duration_tracks_gate_model;
          Alcotest.test_case "rejects non-visible" `Quick test_lower_rejects_non_visible;
          Alcotest.test_case "umd angle scaling" `Quick test_lower_umd_rotation_duration_scales;
          Alcotest.test_case "measure acquires" `Quick test_lower_measure_acquires;
        ] );
      ("emit", [ Alcotest.test_case "openpulse json" `Quick test_emit_openpulse_json ]);
      ("properties", qcheck_cases);
    ]
