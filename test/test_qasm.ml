(* OpenQASM 2.0 front-end tests: lexing/parsing, the qelib1 vocabulary,
   user gate definitions with parameter expressions, broadcasting,
   measurement mapping, error reporting, and semantic agreement with the
   equivalent Scaffold programs. *)

module F = Qasm.Frontend
module G = Ir.Gate
module Circuit = Ir.Circuit
module Mat = Ir.Matrices
module M = Mathkit.Matrix

let parse = F.parse

let header = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\n"

(* ---------- Basics ---------- *)

let test_basic_program () =
  let p = parse (header ^ "qreg q[2];\ncreg c[2];\nh q[0];\ncx q[0],q[1];\nmeasure q -> c;\n") in
  Alcotest.(check int) "qubits" 2 p.F.circuit.Circuit.n_qubits;
  Alcotest.(check int) "gates" 4 (Circuit.gate_count p.F.circuit);
  Alcotest.(check (list int)) "measured in cbit order" [ 0; 1 ] p.F.measured

let test_gate_vocabulary () =
  let p =
    parse
      (header
     ^ "qreg q[3];\n\
        x q[0]; y q[0]; z q[0]; h q[0]; s q[0]; sdg q[0]; t q[0]; tdg q[0];\n\
        rx(0.5) q[1]; ry(pi/2) q[1]; rz(-pi) q[1];\n\
        u1(0.1) q[2]; u2(0.1,0.2) q[2]; u3(0.1,0.2,0.3) q[2];\n\
        cz q[0],q[1]; swap q[1],q[2]; ccx q[0],q[1],q[2]; id q[0];\n")
  in
  Alcotest.(check int) "all recognized" 17 (Circuit.gate_count p.F.circuit)

let test_controlled_vocabulary () =
  let p =
    parse
      (header
     ^ "qreg q[2];\ncu1(0.3) q[0],q[1]; crz(0.4) q[0],q[1]; ch q[0],q[1];\n\
        cy q[0],q[1]; cu3(0.1,0.2,0.3) q[0],q[1]; crx(0.5) q[0],q[1]; cry(0.6) q[0],q[1];\n")
  in
  (* All expand to 1Q + CNOT primitives. *)
  List.iter
    (fun g ->
      match (g : G.t) with
      | G.One _ | G.Two (G.Cnot, _, _) -> ()
      | other -> Alcotest.failf "unexpected gate %s" (G.to_string other))
    p.F.circuit.Circuit.gates

let test_parameter_expressions () =
  let p = parse (header ^ "qreg q[1];\nrz(2*pi/4 + 1.5 - 0.5) q[0];\nrx(-pi^2/pi) q[0];\n") in
  (match p.F.circuit.Circuit.gates with
  | [ G.One (G.Rz theta, 0); G.One (G.Rx phi, 0) ] ->
    Alcotest.(check (float 1e-12)) "arith" ((Float.pi /. 2.0) +. 1.0) theta;
    Alcotest.(check (float 1e-12)) "pow and neg" (-.Float.pi) phi
  | _ -> Alcotest.fail "wrong gates")

let test_multiple_registers () =
  let p =
    parse (header ^ "qreg a[2];\nqreg b[2];\ncreg c[1];\ncx a[1],b[0];\nmeasure b[1] -> c[0];\n")
  in
  (match p.F.circuit.Circuit.gates with
  | [ G.Two (G.Cnot, 1, 2); G.Measure 3 ] -> ()
  | _ -> Alcotest.fail "registers not contiguous");
  Alcotest.(check (list (pair string int))) "names"
    [ ("a[0]", 0); ("a[1]", 1); ("b[0]", 2); ("b[1]", 3) ]
    p.F.qubit_names

let test_broadcast () =
  let p = parse (header ^ "qreg q[3];\nh q;\n") in
  Alcotest.(check int) "h on all" 3 (Circuit.one_q_count p.F.circuit);
  let p2 = parse (header ^ "qreg a[3];\nqreg b[3];\ncx a,b;\n") in
  (match p2.F.circuit.Circuit.gates with
  | [ G.Two (G.Cnot, 0, 3); G.Two (G.Cnot, 1, 4); G.Two (G.Cnot, 2, 5) ] -> ()
  | _ -> Alcotest.fail "pairwise broadcast");
  (* Scalar + register broadcast. *)
  let p3 = parse (header ^ "qreg a[1];\nqreg b[3];\ncx a,b;\n") in
  Alcotest.(check int) "scalar control" 3 (Circuit.two_q_count p3.F.circuit)

let test_barrier_ignored () =
  let p = parse (header ^ "qreg q[2];\nh q[0];\nbarrier q;\ncx q[0],q[1];\n") in
  Alcotest.(check int) "barrier dropped" 2 (Circuit.gate_count p.F.circuit)

let test_measure_mapping_order () =
  (* Bits follow creg declaration order, not measurement order. *)
  let p =
    parse
      (header
     ^ "qreg q[2];\ncreg c0[1];\ncreg c1[1];\nmeasure q[1] -> c1[0];\nmeasure q[0] -> c0[0];\n")
  in
  Alcotest.(check (list int)) "cbit order" [ 0; 1 ] p.F.measured

(* ---------- User gate definitions ---------- *)

let test_user_gate () =
  let p =
    parse
      (header
     ^ "gate bell a,b { h a; cx a,b; }\nqreg q[2];\ncreg c[2];\nbell q[0],q[1];\nmeasure q -> c;\n")
  in
  match p.F.circuit.Circuit.gates with
  | [ G.One (G.H, 0); G.Two (G.Cnot, 0, 1); G.Measure 0; G.Measure 1 ] -> ()
  | _ -> Alcotest.fail "definition not expanded"

let test_user_gate_with_params () =
  let p =
    parse
      (header
     ^ "gate twist(theta) a { rz(theta/2) a; rx(theta) a; rz(-theta/2) a; }\n\
        qreg q[1];\ntwist(pi) q[0];\n")
  in
  match p.F.circuit.Circuit.gates with
  | [ G.One (G.Rz t1, 0); G.One (G.Rx t2, 0); G.One (G.Rz t3, 0) ] ->
    Alcotest.(check (float 1e-12)) "half" (Float.pi /. 2.0) t1;
    Alcotest.(check (float 1e-12)) "full" Float.pi t2;
    Alcotest.(check (float 1e-12)) "neg half" (-.Float.pi /. 2.0) t3
  | _ -> Alcotest.fail "parameters not substituted"

let test_nested_user_gates () =
  let p =
    parse
      (header
     ^ "gate flip a { x a; }\ngate double_flip a { flip a; flip a; }\n\
        qreg q[1];\ndouble_flip q[0];\n")
  in
  Alcotest.(check int) "two X" 2 (Circuit.one_q_count p.F.circuit)

let test_user_gate_semantics () =
  (* A user-defined Hadamard from rotations is unitarily a Hadamard. *)
  let p =
    parse
      (header
     ^ "gate myh a { u2(0,pi) a; }\nqreg q[1];\nmyh q[0];\n")
  in
  Alcotest.(check bool) "is hadamard" true
    (M.proportional ~eps:1e-9
       (Mat.circuit_unitary p.F.circuit)
       (Mat.one_q G.H))

(* ---------- Errors ---------- *)

let expect_error src fragment =
  match parse src with
  | exception F.Error (msg, _) ->
    let contains =
      let fl = String.length fragment and ml = String.length msg in
      let rec scan i = i + fl <= ml && (String.sub msg i fl = fragment || scan (i + 1)) in
      scan 0
    in
    if not contains then Alcotest.failf "error %S does not mention %S" msg fragment
  | _ -> Alcotest.failf "expected failure for %S" src

let test_errors () =
  expect_error "qreg q[1];" "OPENQASM";
  expect_error (header ^ "frob q[0];") "unknown";
  expect_error (header ^ "qreg q[1];\nfrob q[0];") "unknown gate";
  expect_error (header ^ "qreg q[2];\ncx q[0],q[0];") "repeated qubits";
  expect_error (header ^ "qreg q[1];\nh q[5];") "out of bounds";
  expect_error (header ^ "qreg q[2];\nqreg q[2];") "already declared";
  expect_error (header ^ "qreg q[1];\nif (c==1) x q[0];") "not supported";
  expect_error (header ^ "qreg a[2];\nqreg b[3];\ncx a,b;") "equal sizes";
  expect_error
    (header ^ "gate loop a { loop a; }\nqreg q[1];\nloop q[0];")
    "too deep";
  expect_error (header ^ "qreg q[1];\ncreg c[1];\nmeasure q[0] -> c[0];\nmeasure q[0] -> c[0];")
    "measured twice"

(* ---------- Agreement with Scaffold front end ---------- *)

let test_matches_scaffold_bv4 () =
  let qasm =
    parse
      (header
     ^ "qreg q[4];\ncreg c[3];\nx q[3];\nh q;\ncx q[0],q[3];\ncx q[1],q[3];\n\
        cx q[2],q[3];\nh q[0];\nh q[1];\nh q[2];\nmeasure q[0] -> c[0];\n\
        measure q[1] -> c[1];\nmeasure q[2] -> c[2];\n")
  in
  let builtin = Bench_kit.Programs.bv 4 in
  let dist_qasm =
    Sim.Runner.ideal_distribution (Circuit.body qasm.F.circuit) ~measured:qasm.F.measured
  in
  let dist_builtin =
    Sim.Runner.ideal_distribution
      (Circuit.body builtin.Bench_kit.Programs.circuit)
      ~measured:[ 0; 1; 2 ]
  in
  Alcotest.(check string) "same answer" (fst (List.hd dist_builtin))
    (fst (List.hd dist_qasm))

let test_emit_program_roundtrip () =
  (* Every benchmark exported as portable QASM and re-imported must keep
     its noiseless semantics. Also exercise gates qelib1 lacks. *)
  let cases =
    List.map
      (fun (p : Bench_kit.Programs.t) ->
        (p.Bench_kit.Programs.name, p.Bench_kit.Programs.circuit,
         p.Bench_kit.Programs.spec.Ir.Spec.measured))
      (Bench_kit.Programs.all @ Bench_kit.Programs.extras)
    @ [
        ( "exotic",
          Circuit.measure_all
            (Circuit.create 2
               [
                 G.One (G.Rxy (0.7, 1.1), 0);
                 G.Two (G.Xx (Float.pi /. 4.0), 0, 1);
                 G.Two (G.Iswap, 0, 1);
               ])
            [ 0; 1 ],
          [ 0; 1 ] );
      ]
  in
  List.iter
    (fun (name, circuit, measured) ->
      let text = Backend.Qasm_emit.emit_program ~name circuit in
      let reparsed = parse text in
      let reference =
        Sim.Runner.ideal_distribution (Circuit.body circuit) ~measured
      in
      let roundtrip =
        Sim.Runner.ideal_distribution
          (Circuit.body reparsed.F.circuit)
          ~measured:reparsed.F.measured
      in
      let tvd = Sim.Dist.total_variation reference roundtrip in
      if tvd > 1e-6 then Alcotest.failf "%s: roundtrip tvd %.6f" name tvd)
    cases

let test_compiles_end_to_end () =
  let p =
    parse
      (header
     ^ "qreg q[3];\ncreg c[3];\nx q[0];\nx q[1];\nccx q[0],q[1],q[2];\nmeasure q -> c;\n")
  in
  let compiled =
    Triq.Pipeline.to_compiled
      (Triq.Pipeline.compile_level Device.Machines.umdti p.F.circuit
         ~level:Triq.Pipeline.OneQOptCN)
  in
  let spec = Ir.Spec.deterministic p.F.measured "111" in
  let outcome = Sim.Runner.simulate ~config:(Sim.Runner.Config.make ~trajectories:150 ()) compiled spec in
  Alcotest.(check bool) "correct" true outcome.Sim.Runner.dominant_correct

let () =
  Alcotest.run "qasm"
    [
      ( "parsing",
        [
          Alcotest.test_case "basic" `Quick test_basic_program;
          Alcotest.test_case "vocabulary" `Quick test_gate_vocabulary;
          Alcotest.test_case "controlled vocabulary" `Quick test_controlled_vocabulary;
          Alcotest.test_case "parameter expressions" `Quick test_parameter_expressions;
          Alcotest.test_case "multiple registers" `Quick test_multiple_registers;
          Alcotest.test_case "broadcast" `Quick test_broadcast;
          Alcotest.test_case "barrier" `Quick test_barrier_ignored;
          Alcotest.test_case "measure order" `Quick test_measure_mapping_order;
        ] );
      ( "definitions",
        [
          Alcotest.test_case "user gate" `Quick test_user_gate;
          Alcotest.test_case "parameters" `Quick test_user_gate_with_params;
          Alcotest.test_case "nesting" `Quick test_nested_user_gates;
          Alcotest.test_case "semantics" `Quick test_user_gate_semantics;
        ] );
      ("errors", [ Alcotest.test_case "diagnostics" `Quick test_errors ]);
      ( "integration",
        [
          Alcotest.test_case "matches scaffold bv4" `Quick test_matches_scaffold_bv4;
          Alcotest.test_case "emit_program roundtrip" `Quick test_emit_program_roundtrip;
          Alcotest.test_case "end to end" `Quick test_compiles_end_to_end;
        ] );
    ]
