(* Simulator tests: statevector correctness against known states and the
   matrix backend, noise model behaviour, and runner end-to-end checks. *)

module G = Ir.Gate
module Circuit = Ir.Circuit
module Mat = Ir.Matrices
module M = Mathkit.Matrix
module Rng = Mathkit.Rng
module Machines = Device.Machines
module Sv = Sim.Statevector
module Noise = Sim.Noise
module Runner = Sim.Runner
module Pipeline = Triq.Pipeline

let circuit n gates = Circuit.create n gates

(* ---------- Statevector ---------- *)

let test_sv_init () =
  let s = Sv.init 3 in
  Alcotest.(check (float 1e-12)) "all mass on 0" 1.0 (Sv.probability s 0);
  Alcotest.(check (float 1e-12)) "norm" 1.0 (Sv.norm2 s)

let test_sv_x_flips () =
  let s = Sv.init 2 in
  Sv.apply_one s (Mat.one_q G.X) 0;
  (* Qubit 0 is the high bit: |00> -> |10> = index 2. *)
  Alcotest.(check (float 1e-12)) "index 2" 1.0 (Sv.probability s 2)

let test_sv_h_superposition () =
  let s = Sv.init 1 in
  Sv.apply_one s (Mat.one_q G.H) 0;
  Alcotest.(check (float 1e-12)) "p0" 0.5 (Sv.probability s 0);
  Alcotest.(check (float 1e-12)) "p1" 0.5 (Sv.probability s 1)

let test_sv_bell () =
  let s = Sv.run (circuit 2 [ G.One (G.H, 0); G.Two (G.Cnot, 0, 1) ]) in
  Alcotest.(check (float 1e-12)) "p00" 0.5 (Sv.probability s 0);
  Alcotest.(check (float 1e-12)) "p11" 0.5 (Sv.probability s 3);
  Alcotest.(check (float 1e-12)) "p01" 0.0 (Sv.probability s 1)

let test_sv_matches_matrix_backend () =
  (* Random circuits: the statevector result must equal the column of the
     full unitary. *)
  let rng = Rng.create 41 in
  for _ = 1 to 25 do
    let n = 3 in
    let kinds = [| G.H; G.X; G.T; G.S; G.Rx 0.7; G.Ry 0.3; G.Rz 1.1 |] in
    let len = 1 + Rng.int rng 12 in
    let gates =
      List.init len (fun _ ->
          if Rng.bool rng 0.3 then begin
            let a = Rng.int rng n in
            let b = (a + 1 + Rng.int rng (n - 1)) mod n in
            G.Two (G.Cnot, a, b)
          end
          else G.One (kinds.(Rng.int rng 7), Rng.int rng n))
    in
    let c = circuit n gates in
    let u = Mat.circuit_unitary c in
    let s = Sv.run c in
    for i = 0 to (1 lsl n) - 1 do
      let expected = M.get u i 0 in
      if not (Mathkit.Cplx.approx ~eps:1e-9 expected (Sv.amplitude s i)) then
        Alcotest.fail "statevector disagrees with matrix backend"
    done
  done

let test_sv_two_q_arbitrary_pair () =
  (* Apply CNOT on a non-adjacent, reversed pair and compare backends. *)
  let c = circuit 3 [ G.One (G.H, 2); G.Two (G.Cnot, 2, 0) ] in
  let u = Mat.circuit_unitary c in
  let s = Sv.run c in
  for i = 0 to 7 do
    if not (Mathkit.Cplx.approx ~eps:1e-12 (M.get u i 0) (Sv.amplitude s i)) then
      Alcotest.failf "mismatch at %d" i
  done

let test_sv_norm_preserved () =
  let s = Sv.run (circuit 4 [ G.One (G.H, 0); G.Two (G.Cnot, 0, 3); G.One (G.T, 3) ]) in
  Alcotest.(check (float 1e-9)) "unit norm" 1.0 (Sv.norm2 s)

let test_sv_sample_distribution () =
  let s = Sv.run (circuit 1 [ G.One (G.H, 0) ]) in
  let rng = Rng.create 7 in
  let draw = Sv.sampler s in
  let ones = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    if draw rng = 1 then incr ones
  done;
  let frac = float_of_int !ones /. float_of_int n in
  if Float.abs (frac -. 0.5) > 0.02 then Alcotest.failf "biased sampling: %f" frac;
  (* The deprecated one-shot convenience must keep agreeing with a fresh
     sampler stream (compat guarantee for external callers). *)
  let r1 = Rng.create 11 and r2 = Rng.create 11 in
  for _ = 1 to 100 do
    Alcotest.(check int) "sample = sampler"
      ((Sv.sample [@alert "-deprecated"]) s r1)
      (Sv.sampler s r2)
  done

let test_sv_rejects_measure () =
  let s = Sv.init 1 in
  Alcotest.(check bool) "raises" true
    (try Sv.apply_gate s (G.Measure 0); false with Invalid_argument _ -> true)

(* Adversarial CDF boundary cases: a draw must never select a bucket with
   zero probability, no matter where it lands in the cumulative table. *)
let test_sv_cdf_boundaries () =
  (* |1>: the zero-mass bucket 0 ends exactly at cumulative 0.0, so a
     draw of 0.0 sits on the edge. *)
  let table = [| 0.0; 1.0 |] in
  Alcotest.(check int) "target 0.0 skips zero-mass prefix" 1
    (Sv.cdf_index table 0.0);
  Alcotest.(check int) "interior draw" 1 (Sv.cdf_index table 0.5);
  (* Interior edge: draw lands exactly on a cumulative boundary followed
     by a zero-mass bucket. *)
  let table = [| 0.5; 0.5; 1.0 |] in
  Alcotest.(check int) "edge draw skips zero-mass bucket" 2
    (Sv.cdf_index table 0.5);
  Alcotest.(check int) "just below edge" 0 (Sv.cdf_index table 0.49);
  (* Rounding can make the scaled draw equal (or exceed) the table's
     total; trailing zero-mass buckets must be walked back over. *)
  let table = [| 0.25; 1.0; 1.0; 1.0 |] in
  Alcotest.(check int) "target = total lands on last massive bucket" 1
    (Sv.cdf_index table 1.0);
  Alcotest.(check int) "target past total" 1 (Sv.cdf_index table 1.1);
  (* Total < 1 from float rounding: a draw in the lost tail must still
     map to the last bucket that carries mass. *)
  let table = [| 0.3; 0.999999999 |] in
  Alcotest.(check int) "short table, tail draw" 1
    (Sv.cdf_index table 0.9999999995)

let test_sv_sampler_never_impossible () =
  (* End-to-end: state |1> has probability 0 of reading 0; the old [>=]
     lookup returned outcome 0 whenever the RNG drew exactly 0.0. *)
  let s = Sv.run (circuit 1 [ G.One (G.X, 0) ]) in
  let draw = Sv.sampler s in
  let rng = Rng.create 3 in
  for _ = 1 to 10_000 do
    Alcotest.(check int) "only |1> possible" 1 (draw rng)
  done;
  (* Bell-pair marginal: outcomes 01 and 10 carry no mass. *)
  let s = Sv.run (circuit 2 [ G.One (G.H, 0); G.Two (G.Cnot, 0, 1) ]) in
  let draw = Sv.sampler s in
  let rng = Rng.create 5 in
  for _ = 1 to 10_000 do
    let o = draw rng in
    if o = 1 || o = 2 then Alcotest.failf "impossible outcome %d sampled" o
  done

(* ---------- Noise ---------- *)

let noise_for machine = Noise.create machine (Device.Machine.calibration machine ~day:0)

let test_noise_virtual_z_free () =
  let n = noise_for Machines.ibmq5 in
  Alcotest.(check (float 1e-12)) "U1 free" 0.0
    (Noise.gate_error_prob n (G.One (G.U1 0.3, 0)));
  Alcotest.(check bool) "U3 costs" true
    (Noise.gate_error_prob n (G.One (G.U3 (0.3, 0.1, 0.2), 0)) > 0.0)

let test_noise_two_q_dominates () =
  let n = noise_for Machines.ibmq14 in
  let one = Noise.gate_error_prob n (G.One (G.U3 (0.3, 0.1, 0.2), 1)) in
  let two = Noise.gate_error_prob n (G.Two (G.Cnot, 1, 0)) in
  Alcotest.(check bool) "2q error > 1q error" true (two > one)

let test_noise_readout_positive () =
  let n = noise_for Machines.agave in
  for q = 0 to 3 do
    Alcotest.(check bool) "positive" true (Noise.readout_flip_prob n q > 0.0)
  done

let test_noise_umd_low () =
  let sc = noise_for Machines.ibmq14 in
  let ion = noise_for Machines.umdti in
  let sc_2q = Noise.gate_error_prob sc (G.Two (G.Cnot, 1, 0)) in
  let ion_2q = Noise.gate_error_prob ion (G.Two (G.Xx (Float.pi /. 4.0), 0, 1)) in
  Alcotest.(check bool) "ion trap lower 2q error" true (ion_2q < sc_2q)

let test_noise_inject_flips_state () =
  (* With error probability forced high via a machine with bad gates, the
     injection path must report errors and keep the state normalized. *)
  let machine = Machines.agave in
  let n = noise_for machine in
  let rng = Rng.create 3 in
  let state = Sv.init 2 in
  let injected = ref 0 in
  for _ = 1 to 200 do
    if Noise.inject n rng (G.Two (G.Cz, 0, 1)) state ~qubit_of:(fun q -> q) then
      incr injected
  done;
  Alcotest.(check bool) "some errors injected" true (!injected > 0);
  Alcotest.(check (float 1e-6)) "still normalized" 1.0 (Sv.norm2 state)

(* ---------- Runner ---------- *)

let bell_program =
  Circuit.measure_all (circuit 2 [ G.One (G.H, 0); G.Two (G.Cnot, 0, 1) ]) [ 0; 1 ]

let bell_spec = Ir.Spec.distribution [ 0; 1 ] [ ("00", 0.5); ("11", 0.5) ]

let test_runner_rejects_degenerate_params () =
  let compiled =
    Pipeline.to_compiled
      (Pipeline.compile_level Machines.ibmq5 bell_program ~level:Pipeline.OneQOptCN)
  in
  let raises f = try ignore (f ()); false with Invalid_argument _ -> true in
  (* trajectories=0 used to divide the averaged distribution by zero and
     return all-NaN outcomes. *)
  Alcotest.(check bool) "trajectories=0 rejected" true
    (raises (fun () -> Runner.simulate ~config:(Runner.Config.make ~trajectories:0 ()) compiled bell_spec));
  Alcotest.(check bool) "trials=0 rejected" true
    (raises (fun () -> Runner.simulate ~config:(Runner.Config.make ~trials:0 ()) compiled bell_spec))

let test_runner_bell_on_umd () =
  let compiled = Pipeline.compile_level Machines.umdti bell_program ~level:Pipeline.OneQOptCN in
  let outcome = Runner.simulate (Pipeline.to_compiled compiled) bell_spec in
  Alcotest.(check bool)
    (Printf.sprintf "high success (%f)" outcome.Runner.success_rate)
    true
    (outcome.Runner.success_rate > 0.9);
  Alcotest.(check int) "counts sum to trials" outcome.Runner.trials
    (List.fold_left (fun acc (_, n) -> acc + n) 0 outcome.Runner.counts)

let test_runner_deterministic () =
  let compiled = Pipeline.compile_level Machines.ibmq5 bell_program ~level:Pipeline.OneQOptCN in
  let o1 = Runner.simulate ~config:(Runner.Config.make ~seed:5 ()) (Pipeline.to_compiled compiled) bell_spec in
  let o2 = Runner.simulate ~config:(Runner.Config.make ~seed:5 ()) (Pipeline.to_compiled compiled) bell_spec in
  Alcotest.(check (float 1e-12)) "same seed, same result" o1.Runner.success_rate
    o2.Runner.success_rate

let test_runner_noise_hurts () =
  (* Success on a noisy machine must be below the ideal 1.0 but above
     chance for a short circuit. *)
  let x_program = Circuit.measure_all (circuit 1 [ G.One (G.X, 0) ]) [ 0 ] in
  let spec = Ir.Spec.deterministic [ 0 ] "1" in
  let compiled = Pipeline.compile_level Machines.agave x_program ~level:Pipeline.OneQOptCN in
  let outcome = Runner.simulate (Pipeline.to_compiled compiled) spec in
  Alcotest.(check bool) "below perfect" true (outcome.Runner.success_rate < 1.0);
  Alcotest.(check bool) "above chance" true (outcome.Runner.success_rate > 0.6)

let test_runner_ideal_distribution () =
  let dist = Runner.ideal_distribution (Circuit.body bell_program) ~measured:[ 0; 1 ] in
  Alcotest.(check int) "two outcomes" 2 (List.length dist);
  List.iter
    (fun (bits, p) ->
      if bits <> "00" && bits <> "11" then Alcotest.failf "unexpected %s" bits;
      Alcotest.(check (float 1e-9)) "half" 0.5 p)
    dist

let test_runner_readout_order () =
  (* Measure in reversed order: bitstring must follow the measured list. *)
  let c = Circuit.measure_all (circuit 2 [ G.One (G.X, 0) ]) [ 0; 1 ] in
  let dist_fwd = Runner.ideal_distribution (Circuit.body c) ~measured:[ 0; 1 ] in
  let dist_rev = Runner.ideal_distribution (Circuit.body c) ~measured:[ 1; 0 ] in
  Alcotest.(check string) "forward" "10" (fst (List.hd dist_fwd));
  Alcotest.(check string) "reversed" "01" (fst (List.hd dist_rev))

let test_runner_better_esp_better_success () =
  (* Same program, same machine: the noise-aware compilation should not do
     materially worse than the naive one. *)
  let program = Bench_kit.Programs.(bv 4) in
  let naive = Pipeline.compile_level Machines.ibmq14 program.Bench_kit.Programs.circuit ~level:Pipeline.N in
  let smart =
    Pipeline.compile_level Machines.ibmq14 program.Bench_kit.Programs.circuit
      ~level:Pipeline.OneQOptCN
  in
  let spec = program.Bench_kit.Programs.spec in
  let o_naive = Runner.simulate (Pipeline.to_compiled naive) spec in
  let o_smart = Runner.simulate (Pipeline.to_compiled smart) spec in
  Alcotest.(check bool)
    (Printf.sprintf "smart %.3f >= naive %.3f - 0.05" o_smart.Runner.success_rate
       o_naive.Runner.success_rate)
    true
    (o_smart.Runner.success_rate >= o_naive.Runner.success_rate -. 0.05)

let test_runner_sampled_counts () =
  let compiled = Pipeline.compile_level Machines.umdti bell_program ~level:Pipeline.OneQOptCN in
  let o =
    Runner.simulate ~config:(Runner.Config.make ~seed:9 ~sample_counts:true ()) (Pipeline.to_compiled compiled) bell_spec
  in
  Alcotest.(check int) "counts sum to trials" o.Runner.trials
    (List.fold_left (fun acc (_, n) -> acc + n) 0 o.Runner.counts);
  (* Sampled counts fluctuate around the distribution but stay close. *)
  let p00 =
    float_of_int (Option.value ~default:0 (List.assoc_opt "00" o.Runner.counts))
    /. float_of_int o.Runner.trials
  in
  Alcotest.(check bool) (Printf.sprintf "p00 %.3f near 0.5" p00) true
    (Float.abs (p00 -. 0.5) < 0.05);
  (* Different seeds produce different samples. *)
  let o2 =
    Runner.simulate ~config:(Runner.Config.make ~seed:10 ~sample_counts:true ()) (Pipeline.to_compiled compiled) bell_spec
  in
  Alcotest.(check bool) "seeds differ" true (o.Runner.counts <> o2.Runner.counts)

(* ---------- Mitigation ---------- *)

let test_mitigation_inverts_exactly () =
  (* Corrupting then correcting with the same flips is the identity. *)
  let flip = [| 0.1; 0.05 |] in
  let clean = [ ("00", 0.7); ("11", 0.3) ] in
  let as_vector dist =
    let v = Array.make 4 0.0 in
    List.iter
      (fun (bits, p) ->
        let idx = String.fold_left (fun a c -> (a lsl 1) lor (if c = '1' then 1 else 0)) 0 bits in
        v.(idx) <- p)
      dist;
    v
  in
  let corrupted = Sim.Dist.corrupt_readout (as_vector clean) flip in
  let recovered = Sim.Mitigation.correct ~flip (Sim.Dist.to_strings corrupted) in
  List.iter
    (fun (bits, expected) ->
      let got = Option.value ~default:0.0 (List.assoc_opt bits recovered) in
      Alcotest.(check (float 1e-9)) bits expected got)
    clean

let test_mitigation_validation () =
  Alcotest.(check bool) "flip >= 0.5 rejected" true
    (try ignore (Sim.Mitigation.correct ~flip:[| 0.6 |] [ ("0", 1.0) ]); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "length mismatch" true
    (try ignore (Sim.Mitigation.correct ~flip:[| 0.1 |] [ ("00", 1.0) ]); false
     with Invalid_argument _ -> true)

let test_mitigation_improves_success () =
  (* On a readout-heavy machine, mitigation must raise measured success. *)
  let p = Bench_kit.Programs.toffoli in
  let compiled =
    Pipeline.to_compiled
      (Pipeline.compile_level Machines.agave p.Bench_kit.Programs.circuit
         ~level:Pipeline.OneQOptCN)
  in
  let raw, mitigated =
    Sim.Mitigation.mitigated_success ~trajectories:300 compiled
      p.Bench_kit.Programs.spec
  in
  Alcotest.(check bool)
    (Printf.sprintf "mitigated %.3f > raw %.3f" mitigated raw)
    true (mitigated > raw)

let test_parity_expectation () =
  let dist = [ ("00", 0.5); ("11", 0.5) ] in
  Alcotest.(check (float 1e-12)) "even parity" 1.0
    (Sim.Dist.parity_expectation dist [ 0; 1 ]);
  Alcotest.(check (float 1e-12)) "single bit balanced" 0.0
    (Sim.Dist.parity_expectation dist [ 0 ]);
  let dist2 = [ ("01", 1.0) ] in
  Alcotest.(check (float 1e-12)) "odd parity" (-1.0)
    (Sim.Dist.parity_expectation dist2 [ 0; 1 ])

(* ---------- qcheck ---------- *)

let dist_gen m =
  QCheck.Gen.(
    map
      (fun weights ->
        let total = List.fold_left ( +. ) 0.0 weights in
        List.mapi
          (fun idx w ->
            let bits =
              String.init m (fun i -> if (idx lsr (m - 1 - i)) land 1 = 1 then '1' else '0')
            in
            (bits, w /. total))
          weights)
      (list_repeat (1 lsl m) (float_range 0.01 1.0)))

let prop_mitigation_roundtrip =
  QCheck.Test.make ~count:200 ~name:"corrupt then mitigate is identity"
    (QCheck.make
       QCheck.Gen.(pair (dist_gen 3) (list_repeat 3 (float_range 0.0 0.35))))
    (fun (clean, flips) ->
      let flip = Array.of_list flips in
      let v = Array.make 8 0.0 in
      List.iter
        (fun (bits, p) ->
          let idx =
            String.fold_left (fun a c -> (a lsl 1) lor (if c = '1' then 1 else 0)) 0 bits
          in
          v.(idx) <- p)
        clean;
      let corrupted = Sim.Dist.corrupt_readout v flip in
      let recovered = Sim.Mitigation.correct ~flip (Sim.Dist.to_strings corrupted) in
      Sim.Dist.total_variation clean recovered < 1e-6)

let prop_corrupt_preserves_normalization =
  QCheck.Test.make ~count:200 ~name:"readout corruption preserves total probability"
    (QCheck.make
       QCheck.Gen.(pair (dist_gen 3) (list_repeat 3 (float_range 0.0 0.49))))
    (fun (clean, flips) ->
      let flip = Array.of_list flips in
      let v = Array.make 8 0.0 in
      List.iter
        (fun (bits, p) ->
          let idx =
            String.fold_left (fun a c -> (a lsl 1) lor (if c = '1' then 1 else 0)) 0 bits
          in
          v.(idx) <- p)
        clean;
      let corrupted = Sim.Dist.corrupt_readout v flip in
      Float.abs (Array.fold_left ( +. ) 0.0 corrupted -. 1.0) < 1e-9)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_mitigation_roundtrip; prop_corrupt_preserves_normalization ]

(* ---------- Stabilizer backend & fusion ---------- *)

module Stab = Sim.Stabilizer
module Fusion = Sim.Fusion

(* Seeded random Clifford gate streams (plain list — the proptest
   generators are exercised separately by the clifford fuzz oracle). *)
let random_clifford_gates rng n len =
  List.init len (fun _ ->
      if n >= 2 && Rng.bool rng 0.45 then begin
        let a = Rng.int rng n in
        let b = (a + 1 + Rng.int rng (n - 1)) mod n in
        let k = Rng.choose rng [ G.Cnot; G.Cz; G.Swap; G.Iswap ] in
        G.Two (k, a, b)
      end
      else
        let k = Rng.choose rng [ G.X; G.Y; G.Z; G.H; G.S; G.Sdg ] in
        G.One (k, Rng.int rng n))

let l1 a b =
  let d = ref 0.0 in
  Array.iteri (fun i x -> d := !d +. Float.abs (x -. b.(i))) a;
  !d

let test_stab_matches_statevector () =
  (* Tableau execution must agree with the dense backend exactly:
     probabilities, and the materialized state up to global phase. *)
  let rng = Rng.create 91 in
  for _ = 1 to 40 do
    let n = 1 + Rng.int rng 4 in
    let gates = random_clifford_gates rng n (Rng.int rng 15) in
    let c = circuit n gates in
    let t = Stab.init n in
    List.iter (fun g -> assert (Stab.apply_gate t g)) gates;
    let sv = Sv.run c in
    Alcotest.(check (float 1e-9))
      "probabilities" 0.0
      (l1 (Stab.probabilities t) (Sv.probabilities sv));
    let mat = Stab.to_statevector t in
    let overlap = ref Mathkit.Cplx.zero in
    for i = 0 to (1 lsl n) - 1 do
      overlap :=
        Mathkit.Cplx.add !overlap
          (Mathkit.Cplx.mul (Mathkit.Cplx.conj (Sv.amplitude mat i))
             (Sv.amplitude sv i))
    done;
    Alcotest.(check (float 1e-9))
      "fidelity" 1.0
      (Mathkit.Cplx.abs !overlap)
  done

let test_stab_compiled_apps_match_apply_gate () =
  (* The table-compiled fast path must evolve the tableau exactly like
     the generic action path. *)
  let rng = Rng.create 17 in
  for _ = 1 to 40 do
    let n = 1 + Rng.int rng 4 in
    let gates = random_clifford_gates rng n (1 + Rng.int rng 12) in
    let slow = Stab.init n and fast = Stab.init n in
    List.iter
      (fun g ->
        assert (Stab.apply_gate slow g);
        let act = Option.get (Dataflow.Tableau.Action.of_gate g) in
        let qs = Array.of_list (G.qubits g) in
        Stab.apply_app fast (Stab.compile_action act qs))
      gates;
    Alcotest.(check (float 1e-12))
      "same distribution" 0.0
      (l1 (Stab.probabilities slow) (Stab.probabilities fast))
  done

let test_stab_readout_sign_flips () =
  (* The frozen-readout sign-flip path — propagate a mid-circuit Pauli
     to the end as a mask, land it as row sign flips — must match the
     dense simulation that applies the error explicitly. *)
  let rng = Rng.create 29 in
  for _ = 1 to 60 do
    let n = 1 + Rng.int rng 4 in
    let len = 1 + Rng.int rng 12 in
    let gates = random_clifford_gates rng n len in
    let apps =
      List.map
        (fun g ->
          let act = Option.get (Dataflow.Tableau.Action.of_gate g) in
          Stab.compile_action act (Array.of_list (G.qubits g)))
        gates
    in
    let t = Stab.init n in
    List.iter2 (fun _ app -> Stab.apply_app t app) gates apps;
    let r = Stab.readout t in
    (* Inject a random Pauli after gate [pos]. *)
    let pos = Rng.int rng len in
    let q = Rng.int rng n in
    let p = Rng.int rng 3 in
    (* Dense reference: replay with the explicit error. *)
    let sv = Sv.init n in
    List.iteri
      (fun i g ->
        Sv.apply_gate sv g;
        if i = pos then
          let k = match p with 0 -> G.X | 1 -> G.Y | _ -> G.Z in
          Sv.apply_one sv (Mat.one_q k) q)
      gates;
    (* Sign-flip path: conjugate the Pauli mask through the tail. *)
    let xm = ref (if p = 2 then 0 else 1 lsl q) in
    let zm = ref (if p = 0 then 0 else 1 lsl q) in
    List.iteri
      (fun i app ->
        if i > pos then begin
          let x, z = Stab.conjugate_masks app ~xm:!xm ~zm:!zm in
          xm := x;
          zm := z
        end)
      apps;
    let flips = Stab.flip_mask r ~xm:!xm in
    Alcotest.(check (float 1e-9))
      "erred distribution" 0.0
      (l1 (Stab.readout_probabilities r ~flips) (Sv.probabilities sv));
    Alcotest.(check (float 1e-12))
      "clean distribution" 0.0
      (l1 (Stab.readout_probabilities r ~flips:0) (Stab.probabilities t))
  done

let test_fusion_matches_unfused () =
  (* A fused plan must reproduce the gate-by-gate amplitudes exactly —
     fusion only reorders commuting work. Mixed Clifford/non-Clifford
     streams exercise 1Q-run merging, diagonal batching and the
     permutation kernels. *)
  let rng = Rng.create 53 in
  for _ = 1 to 40 do
    let n = 1 + Rng.int rng 4 in
    let len = Rng.int rng 16 in
    let gates =
      List.init len (fun _ ->
          if n >= 2 && Rng.bool rng 0.4 then begin
            let a = Rng.int rng n in
            let b = (a + 1 + Rng.int rng (n - 1)) mod n in
            let k = Rng.choose rng [ G.Cnot; G.Cz; G.Swap; G.Iswap; G.Xx 0.42 ] in
            G.Two (k, a, b)
          end
          else
            let k =
              Rng.choose rng
                [ G.H; G.X; G.S; G.T; G.Rz 0.9; G.Rx 0.31; G.U1 1.7 ]
            in
            G.One (k, Rng.int rng n))
    in
    let members =
      Array.of_list
        (List.mapi
           (fun i g ->
             let m =
               match g with
               | G.One (k, _) -> Mat.one_q k
               | G.Two (k, _, _) -> Mat.two_q k
               | _ -> assert false
             in
             { Fusion.idx = i; gate = g; matrix = m })
           gates)
    in
    let fused = Sv.init n in
    Fusion.run_clean fused (Fusion.plan ~n members);
    let plain = Sv.run (circuit n gates) in
    for i = 0 to (1 lsl n) - 1 do
      if
        not
          (Mathkit.Cplx.approx ~eps:1e-9 (Sv.amplitude plain i)
             (Sv.amplitude fused i))
      then Alcotest.fail "fused amplitudes diverge from unfused"
    done
  done

let test_runner_backends_agree () =
  (* End to end: forcing each backend on a compiled Clifford benchmark
     must reproduce the Auto dispatch (same seed => same error draws;
     the tiny gap absorbs the report's 1e-6 truncation). *)
  let p = Bench_kit.Programs.bv 4 in
  let compiled =
    Pipeline.to_compiled
      (Pipeline.compile_level Machines.ibmq5 p.Bench_kit.Programs.circuit
         ~level:Pipeline.OneQOptCN)
  in
  let run backend fusion =
    Runner.simulate
      ~config:
        (Runner.Config.make ~seed:5 ~trials:400 ~trajectories:50 ~backend
           ~fusion ())
      compiled p.Bench_kit.Programs.spec
  in
  let auto = run Runner.Config.Auto true in
  let sv = run Runner.Config.Statevector false in
  let stab = run Runner.Config.Stabilizer false in
  let gap a b =
    let tbl = Hashtbl.create 16 in
    List.iter (fun (k, v) -> Hashtbl.replace tbl k v) a;
    let g =
      List.fold_left
        (fun acc (k, v) ->
          let w = Option.value ~default:0.0 (Hashtbl.find_opt tbl k) in
          Hashtbl.remove tbl k;
          Float.max acc (Float.abs (v -. w)))
        0.0 b
    in
    (* entries of [a] that [b] lacks *)
    Hashtbl.fold (fun _ v acc -> Float.max acc v) tbl g
  in
  if gap auto.Runner.distribution sv.Runner.distribution > 2e-6 then
    Alcotest.fail "auto dispatch diverges from forced statevector";
  if gap auto.Runner.distribution stab.Runner.distribution > 2e-6 then
    Alcotest.fail "auto dispatch diverges from forced stabilizer";
  Alcotest.(check (float 2e-6))
    "success rates" sv.Runner.success_rate auto.Runner.success_rate

let () =
  Alcotest.run "sim"
    [
      ( "statevector",
        [
          Alcotest.test_case "init" `Quick test_sv_init;
          Alcotest.test_case "x flips" `Quick test_sv_x_flips;
          Alcotest.test_case "h superposition" `Quick test_sv_h_superposition;
          Alcotest.test_case "bell" `Quick test_sv_bell;
          Alcotest.test_case "matches matrix backend" `Quick
            test_sv_matches_matrix_backend;
          Alcotest.test_case "arbitrary pair" `Quick test_sv_two_q_arbitrary_pair;
          Alcotest.test_case "norm preserved" `Quick test_sv_norm_preserved;
          Alcotest.test_case "sampling" `Quick test_sv_sample_distribution;
          Alcotest.test_case "rejects measure" `Quick test_sv_rejects_measure;
          Alcotest.test_case "cdf boundaries" `Quick test_sv_cdf_boundaries;
          Alcotest.test_case "no impossible outcomes" `Quick
            test_sv_sampler_never_impossible;
        ] );
      ( "noise",
        [
          Alcotest.test_case "virtual z free" `Quick test_noise_virtual_z_free;
          Alcotest.test_case "2q dominates" `Quick test_noise_two_q_dominates;
          Alcotest.test_case "readout positive" `Quick test_noise_readout_positive;
          Alcotest.test_case "umd low error" `Quick test_noise_umd_low;
          Alcotest.test_case "injection" `Quick test_noise_inject_flips_state;
        ] );
      ( "mitigation",
        [
          Alcotest.test_case "exact inversion" `Quick test_mitigation_inverts_exactly;
          Alcotest.test_case "validation" `Quick test_mitigation_validation;
          Alcotest.test_case "improves success" `Quick test_mitigation_improves_success;
          Alcotest.test_case "parity expectation" `Quick test_parity_expectation;
        ] );
      ("properties", qcheck_cases);
      ( "runner",
        [
          Alcotest.test_case "rejects degenerate params" `Quick
            test_runner_rejects_degenerate_params;
          Alcotest.test_case "bell on umd" `Quick test_runner_bell_on_umd;
          Alcotest.test_case "deterministic" `Quick test_runner_deterministic;
          Alcotest.test_case "noise hurts" `Quick test_runner_noise_hurts;
          Alcotest.test_case "ideal distribution" `Quick test_runner_ideal_distribution;
          Alcotest.test_case "readout order" `Quick test_runner_readout_order;
          Alcotest.test_case "esp ordering" `Quick test_runner_better_esp_better_success;
          Alcotest.test_case "sampled counts" `Quick test_runner_sampled_counts;
        ] );
      ( "stabilizer",
        [
          Alcotest.test_case "matches statevector" `Quick
            test_stab_matches_statevector;
          Alcotest.test_case "compiled apps" `Quick
            test_stab_compiled_apps_match_apply_gate;
          Alcotest.test_case "readout sign flips" `Quick
            test_stab_readout_sign_flips;
        ] );
      ( "fusion",
        [
          Alcotest.test_case "matches unfused" `Quick test_fusion_matches_unfused;
        ] );
      ( "backends",
        [
          Alcotest.test_case "agree end to end" `Quick test_runner_backends_agree;
        ] );
    ]
