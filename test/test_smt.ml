(* SAT-solver tests (unit + randomized cross-check against brute force)
   and the SMT-style mapper's agreement with the branch-and-bound
   mapper. *)

(* The legacy Mapper/Mapper_smt wrappers are exercised on purpose: these
   tests pin the wrappers' golden equivalence with the layout engine. *)
[@@@alert "-deprecated"]

module Solver = Smt.Solver
module Rng = Mathkit.Rng

module Circuit = Ir.Circuit
module Mapper = Triq.Mapper
module Mapper_smt = Triq.Mapper_smt
module Machines = Device.Machines
module Machine = Device.Machine


(* ---------- Solver basics ---------- *)

let is_sat = function Solver.Sat _ -> true | Solver.Unsat -> false

let test_solver_trivial () =
  let s = Solver.create 2 in
  Solver.add_clause s [ 1 ];
  Solver.add_clause s [ -1; 2 ];
  (match Solver.solve s with
  | Solver.Sat model ->
    Alcotest.(check bool) "x1" true model.(1);
    Alcotest.(check bool) "x2" true model.(2)
  | Solver.Unsat -> Alcotest.fail "expected sat");
  Solver.add_clause s [ -2 ];
  Alcotest.(check bool) "now unsat" false (is_sat (Solver.solve s))

let test_solver_tautology_and_duplicates () =
  let s = Solver.create 2 in
  Solver.add_clause s [ 1; -1 ];
  Alcotest.(check int) "tautology dropped" 0 (Solver.n_clauses s);
  Solver.add_clause s [ 2; 2 ];
  Alcotest.(check int) "kept once" 1 (Solver.n_clauses s);
  Alcotest.(check bool) "sat" true (is_sat (Solver.solve s))

let test_solver_validation () =
  let s = Solver.create 2 in
  let raises f = try f (); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "empty clause" true (raises (fun () -> Solver.add_clause s []));
  Alcotest.(check bool) "zero literal" true (raises (fun () -> Solver.add_clause s [ 0 ]));
  Alcotest.(check bool) "out of range" true (raises (fun () -> Solver.add_clause s [ 5 ]))

let test_solver_assumptions () =
  let s = Solver.create 2 in
  Solver.add_clause s [ 1; 2 ];
  Alcotest.(check bool) "assume -1 ok" true
    (is_sat (Solver.solve ~assumptions:[ -1 ] s));
  Alcotest.(check bool) "assume both negative" false
    (is_sat (Solver.solve ~assumptions:[ -1; -2 ] s));
  (* State resets between calls. *)
  Alcotest.(check bool) "still sat afterwards" true (is_sat (Solver.solve s))

let test_solver_pigeonhole () =
  (* 3 pigeons, 2 holes: classic small UNSAT. *)
  let s = Solver.create 6 in
  let var p h = (p * 2) + h + 1 in
  for p = 0 to 2 do
    Solver.add_clause s [ var p 0; var p 1 ]
  done;
  for h = 0 to 1 do
    Solver.at_most_one s [ var 0 h; var 1 h; var 2 h ]
  done;
  Alcotest.(check bool) "unsat" false (is_sat (Solver.solve s))

let test_solver_exactly_one () =
  let s = Solver.create 3 in
  Solver.exactly_one s [ 1; 2; 3 ];
  Solver.add_clause s [ -2 ];
  Solver.add_clause s [ -3 ];
  match Solver.solve s with
  | Solver.Sat model ->
    Alcotest.(check bool) "1 forced" true model.(1);
    Alcotest.(check bool) "2 off" false model.(2)
  | Solver.Unsat -> Alcotest.fail "expected sat"

(* Randomized cross-check against brute force. *)
let brute_force n clauses =
  let rec try_assignment a =
    if a >= 1 lsl n then false
    else begin
      let value v = a land (1 lsl (v - 1)) <> 0 in
      let ok =
        List.for_all
          (List.exists (fun l -> if l > 0 then value l else not (value (-l))))
          clauses
      in
      ok || try_assignment (a + 1)
    end
  in
  try_assignment 0

let test_solver_random_cross_check () =
  let rng = Rng.create 2024 in
  for _ = 1 to 200 do
    let n = 3 + Rng.int rng 6 in
    let n_clauses = 2 + Rng.int rng (3 * n) in
    let clauses =
      List.init n_clauses (fun _ ->
          let width = 1 + Rng.int rng 3 in
          List.init width (fun _ ->
              let v = 1 + Rng.int rng n in
              if Rng.bool rng 0.5 then v else -v)
          |> List.sort_uniq compare)
    in
    (* Skip accidental tautologies for the brute-force comparison. *)
    let clauses =
      List.filter (fun c -> not (List.exists (fun l -> List.mem (-l) c) c)) clauses
    in
    if clauses <> [] then begin
      let s = Solver.create n in
      List.iter (Solver.add_clause s) clauses;
      let expected = brute_force n clauses in
      let got = is_sat (Solver.solve s) in
      if got <> expected then
        Alcotest.failf "solver disagrees with brute force (n=%d, sat=%b)" n expected;
      (* If SAT, the model must actually satisfy every clause. *)
      match Solver.solve s with
      | Solver.Sat model ->
        List.iter
          (fun clause ->
            if
              not
                (List.exists
                   (fun l -> if l > 0 then model.(l) else not model.(-l))
                   clause)
            then Alcotest.fail "model does not satisfy a clause")
          clauses
      | Solver.Unsat -> ()
    end
  done

let test_solver_push_pop () =
  let s = Solver.create 2 in
  Solver.add_clause s [ 1; 2 ];
  Solver.push s;
  Solver.add_clause s [ -1 ];
  Solver.add_clause s [ -2 ];
  Alcotest.(check int) "one scope" 1 (Solver.n_scopes s);
  Alcotest.(check bool) "scoped unsat" false (is_sat (Solver.solve s));
  Solver.pop s;
  Alcotest.(check int) "clauses restored" 1 (Solver.n_clauses s);
  Alcotest.(check bool) "sat again" true (is_sat (Solver.solve s))

let test_solver_nested_scopes () =
  let s = Solver.create 3 in
  Solver.add_clause s [ 1 ];
  Solver.push s;
  Solver.add_clause s [ 2 ];
  Solver.push s;
  Solver.add_clause s [ 3 ];
  Alcotest.(check int) "two scopes" 2 (Solver.n_scopes s);
  Alcotest.(check int) "three clauses" 3 (Solver.n_clauses s);
  Solver.pop s;
  (* The inner scope's clause is gone; the outer scope's survives. *)
  Alcotest.(check int) "inner dropped" 2 (Solver.n_clauses s);
  Solver.add_clause s [ -3 ];
  (match Solver.solve s with
  | Solver.Sat model ->
    Alcotest.(check bool) "outer clause still forces x2" true model.(2);
    Alcotest.(check bool) "inner clause forgotten" false model.(3)
  | Solver.Unsat -> Alcotest.fail "expected sat");
  Solver.pop s;
  Alcotest.(check int) "no scopes" 0 (Solver.n_scopes s);
  Alcotest.(check int) "base clause only" 1 (Solver.n_clauses s);
  Alcotest.check_raises "pop without scope"
    (Invalid_argument "Solver.pop: no open scope") (fun () -> Solver.pop s)

(* ---------- SMT mapper vs branch-and-bound mapper ---------- *)

let reliability_for machine =
  Triq.Reliability.compute ~noise_aware:true machine (Machine.calibration machine ~day:0)

let test_mapper_smt_matches_bnb () =
  List.iter
    (fun (machine, (p : Bench_kit.Programs.t)) ->
      let reliability = reliability_for machine in
      let flat = Ir.Decompose.flatten p.Bench_kit.Programs.circuit in
      let bnb = Mapper.solve reliability flat in
      let smt = Mapper_smt.solve reliability flat in
      if Float.abs (bnb.Mapper.objective -. smt.Mapper.objective) > 1e-9 then
        Alcotest.failf "%s/%s: bnb %.6f vs smt %.6f" machine.Machine.name
          p.Bench_kit.Programs.name bnb.Mapper.objective smt.Mapper.objective)
    [
      (Machines.ibmq5, Bench_kit.Programs.bv 4);
      (Machines.ibmq5, Bench_kit.Programs.toffoli);
      (Machines.agave, Bench_kit.Programs.hidden_shift 2);
      (Machines.umdti, Bench_kit.Programs.fredkin);
      (Machines.ibmq14, Bench_kit.Programs.hidden_shift 4);
    ]

let test_mapper_smt_placement_valid () =
  let machine = Machines.ibmq14 in
  let reliability = reliability_for machine in
  let flat = Ir.Decompose.flatten (Bench_kit.Programs.bv 6).Bench_kit.Programs.circuit in
  let result = Mapper_smt.solve reliability flat in
  let sorted = List.sort_uniq compare (Array.to_list result.Mapper.placement) in
  Alcotest.(check int) "injective" 6 (List.length sorted);
  Array.iter
    (fun h -> if h < 0 || h >= 14 then Alcotest.fail "placement out of range")
    result.Mapper.placement;
  Alcotest.(check bool) "exact" true result.Mapper.optimal;
  Alcotest.(check bool) "did some work" true (result.Mapper.nodes_explored > 0)

let test_mapper_smt_usable_in_router () =
  (* The SMT placement must route and preserve semantics end to end. *)
  let machine = Machines.ibmq5 in
  let p = Bench_kit.Programs.bv 4 in
  let reliability = reliability_for machine in
  let flat = Ir.Decompose.flatten p.Bench_kit.Programs.circuit in
  let result = Mapper_smt.solve reliability flat in
  let routed =
    Triq.Router.route reliability machine.Machine.topology
      ~placement:result.Mapper.placement flat
  in
  Alcotest.(check bool) "routed" true
    (Circuit.gate_count routed.Triq.Router.circuit > 0)

let () =
  Alcotest.run "smt"
    [
      ( "solver",
        [
          Alcotest.test_case "trivial" `Quick test_solver_trivial;
          Alcotest.test_case "tautology/duplicates" `Quick
            test_solver_tautology_and_duplicates;
          Alcotest.test_case "validation" `Quick test_solver_validation;
          Alcotest.test_case "assumptions" `Quick test_solver_assumptions;
          Alcotest.test_case "pigeonhole" `Quick test_solver_pigeonhole;
          Alcotest.test_case "exactly one" `Quick test_solver_exactly_one;
          Alcotest.test_case "random cross-check" `Quick test_solver_random_cross_check;
          Alcotest.test_case "push/pop" `Quick test_solver_push_pop;
          Alcotest.test_case "nested scopes" `Quick test_solver_nested_scopes;
        ] );
      ( "mapper_smt",
        [
          Alcotest.test_case "matches b&b objective" `Quick test_mapper_smt_matches_bnb;
          Alcotest.test_case "valid placement" `Quick test_mapper_smt_placement_valid;
          Alcotest.test_case "routes end to end" `Quick test_mapper_smt_usable_in_router;
        ] );
    ]
