(* Tests for the TriQ compiler core: reliability matrix (incl. the paper's
   Figure 6 worked example), mapper, router, direction fixing, vendor gate
   translation and 1Q optimization. *)

(* The legacy Mapper/Mapper_smt wrappers are exercised on purpose: these
   tests pin the wrappers' golden equivalence with the layout engine. *)
[@@@alert "-deprecated"]

module G = Ir.Gate
module Circuit = Ir.Circuit
module Dec = Ir.Decompose
module Mat = Ir.Matrices
module M = Mathkit.Matrix
module Q = Mathkit.Quaternion
module Rng = Mathkit.Rng
module Topology = Device.Topology
module Calibration = Device.Calibration
module Machines = Device.Machines
module Gateset = Device.Gateset
module Reliability = Triq.Reliability
module Mapper = Triq.Mapper
module Router = Triq.Router
module Direction = Triq.Direction
module Translate = Triq.Translate
module Oneq_opt = Triq.Oneq_opt
module Pipeline = Triq.Pipeline

let circuit n gates = Circuit.create n gates

let proportional_circuits name a b =
  Alcotest.(check bool) name true
    (M.proportional ~eps:1e-8 (Mat.circuit_unitary a) (Mat.circuit_unitary b))

(* ---------- Reliability: Figure 6 ---------- *)

let fig6_reliability () =
  Reliability.of_calibration ~noise_aware:true
    Machines.example_8q.Device.Machine.topology Machines.example_8q_calibration

let test_fig6_direct_edges () =
  let r = fig6_reliability () in
  Alcotest.(check (float 1e-9)) "edge 0-1" 0.9 (Reliability.score r 0 1);
  Alcotest.(check (float 1e-9)) "edge 2-6" 0.7 (Reliability.score r 2 6);
  Alcotest.(check (float 1e-9)) "edge 3-7" 0.8 (Reliability.score r 3 7)

let test_fig6_swap_entries () =
  let r = fig6_reliability () in
  (* The caption's example: (1,6) = 0.9^3 * 0.8 = 0.58. *)
  Alcotest.(check (float 0.0075)) "(1,6)" 0.58 (Reliability.score r 1 6);
  (* Asymmetry: (0,2) swaps 0->1 then uses edge 1-2; (2,0) swaps 2->1 then
     uses edge 1-0 — the paper's matrix shows 0.58 vs 0.46. *)
  Alcotest.(check (float 0.0075)) "(0,2)" 0.58 (Reliability.score r 0 2);
  Alcotest.(check (float 0.0075)) "(2,0)" 0.46 (Reliability.score r 2 0);
  (* The paper prints 0.33 for (0,3); the exact value 0.9^3*0.8^3*0.9 is
     0.3359 — the published matrix truncates rather than rounds. *)
  Alcotest.(check (float 0.007)) "(0,3)" 0.33 (Reliability.score r 0 3);
  Alcotest.(check (float 0.0075)) "(0,5)" 0.65 (Reliability.score r 0 5);
  Alcotest.(check (float 0.0075)) "(0,6)" 0.42 (Reliability.score r 0 6);
  Alcotest.(check (float 0.0075)) "(0,7)" 0.24 (Reliability.score r 0 7);
  Alcotest.(check (float 0.0075)) "(3,0)" 0.33 (Reliability.score r 3 0);
  Alcotest.(check (float 0.0075)) "(1,3)" 0.46 (Reliability.score r 1 3);
  Alcotest.(check (float 0.0075)) "(4,2)" 0.42 (Reliability.score r 4 2);
  Alcotest.(check (float 0.0075)) "(7,0)" 0.24 (Reliability.score r 7 0)

let test_fig6_swap_path () =
  let r = fig6_reliability () in
  (* Best path for (1,6): swap 1 toward 5 (neighbour of 6). *)
  Alcotest.(check (list int)) "path 1->6 via 5" [ 1; 5 ] (Reliability.swap_path r 1 6);
  (* Adjacent pair: no swap needed, path is the singleton control. *)
  Alcotest.(check (list int)) "path 0->1" [ 0 ] (Reliability.swap_path r 0 1)

let test_reliability_noise_unaware_is_hops () =
  (* With uniform edge reliability the score only depends on hop count. *)
  let topo = Topology.line 4 in
  let cal =
    Calibration.explicit ~day:0 ~one_q:(Array.make 4 0.001)
      ~two_q:[ ((0, 1), 0.02); ((1, 2), 0.3); ((2, 3), 0.02) ]
      ~readout:(Array.make 4 0.01)
  in
  let r = Reliability.of_calibration ~noise_aware:false topo cal in
  (* Average error = (0.02 + 0.3 + 0.02)/3; every edge treated alike. *)
  Alcotest.(check (float 1e-9)) "symmetric edges" (Reliability.score r 0 1)
    (Reliability.score r 1 2);
  (* Noise-aware mode must penalize the bad middle link. *)
  let rn = Reliability.of_calibration ~noise_aware:true topo cal in
  Alcotest.(check bool) "bad edge scored lower" true
    (Reliability.score rn 1 2 < Reliability.score rn 0 1)

let test_reliability_readout () =
  let r = fig6_reliability () in
  Alcotest.(check (float 1e-9)) "readout rel" 0.95 (Reliability.readout_reliability r 0)

let test_reliability_fully_connected () =
  let topo = Topology.fully_connected 5 in
  let cal =
    Calibration.explicit ~day:0 ~one_q:(Array.make 5 0.001)
      ~two_q:(List.filter_map
                (fun (a, b) -> if a < b then Some ((a, b), 0.01) else None)
                (Topology.edges topo))
      ~readout:(Array.make 5 0.01)
  in
  let r = Reliability.of_calibration ~noise_aware:true topo cal in
  (* Every pair is direct: score = edge reliability, no swaps anywhere. *)
  Alcotest.(check (float 1e-9)) "direct" 0.99 (Reliability.score r 0 4);
  Alcotest.(check (list int)) "no swaps" [ 0 ] (Reliability.swap_path r 0 4)

(* ---------- Mapper ---------- *)

let test_mapper_interactions () =
  let c =
    circuit 3
      [ G.Two (G.Cnot, 0, 1); G.Two (G.Cnot, 0, 1); G.Two (G.Cnot, 1, 2); G.Measure 0 ]
  in
  Alcotest.(check (list (pair (pair int int) int)))
    "aggregated" [ ((0, 1), 2); ((1, 2), 1) ] (Mapper.interactions c)

let test_mapper_trivial () =
  Alcotest.(check (array int)) "identity" [| 0; 1; 2 |]
    (Mapper.trivial ~n_program:3 ~n_hardware:5);
  Alcotest.(check bool) "too big" true
    (try ignore (Mapper.trivial ~n_program:6 ~n_hardware:5); false
     with Invalid_argument _ -> true)

let test_mapper_prefers_good_edge () =
  (* Line of 4; edge 2-3 is much better than 0-1. A single-CNOT program
     must land on qubits 2,3. *)
  let topo = Topology.line 4 in
  let cal =
    Calibration.explicit ~day:0 ~one_q:(Array.make 4 0.001)
      ~two_q:[ ((0, 1), 0.2); ((1, 2), 0.15); ((2, 3), 0.01) ]
      ~readout:(Array.make 4 0.01)
  in
  let r = Reliability.of_calibration ~noise_aware:true topo cal in
  let c = circuit 2 [ G.Two (G.Cnot, 0, 1); G.Measure 0; G.Measure 1 ] in
  let result = Mapper.solve r c in
  Alcotest.(check bool) "optimal search" true result.Mapper.optimal;
  let placed = List.sort compare (Array.to_list result.Mapper.placement) in
  Alcotest.(check (list int)) "uses best edge" [ 2; 3 ] placed

let test_mapper_avoids_bad_readout () =
  (* Fully-connected 3q, all edges equal, qubit 0 has terrible readout. *)
  let topo = Topology.fully_connected 3 in
  let cal =
    Calibration.explicit ~day:0 ~one_q:(Array.make 3 0.001)
      ~two_q:[ ((0, 1), 0.01); ((0, 2), 0.01); ((1, 2), 0.01) ]
      ~readout:[| 0.4; 0.01; 0.01 |]
  in
  let r = Reliability.of_calibration ~noise_aware:true topo cal in
  let c = circuit 2 [ G.Two (G.Cnot, 0, 1); G.Measure 0; G.Measure 1 ] in
  let result = Mapper.solve r c in
  Array.iter
    (fun h -> if h = 0 then Alcotest.fail "placed a measured qubit on bad readout")
    result.Mapper.placement

let test_mapper_objective_matches_evaluate () =
  let r = fig6_reliability () in
  let c =
    circuit 3 [ G.Two (G.Cnot, 0, 1); G.Two (G.Cnot, 1, 2); G.Measure 2 ]
  in
  let result = Mapper.solve r c in
  let min_rel, _ = Mapper.evaluate r c result.Mapper.placement in
  Alcotest.(check (float 1e-9)) "objective consistent" result.Mapper.objective min_rel

let test_mapper_budget_truncation () =
  let r = fig6_reliability () in
  let c =
    circuit 5
      [
        G.Two (G.Cnot, 0, 1); G.Two (G.Cnot, 1, 2); G.Two (G.Cnot, 2, 3);
        G.Two (G.Cnot, 3, 4); G.Two (G.Cnot, 4, 0);
      ]
  in
  let result = Mapper.solve ~node_budget:3 r c in
  Alcotest.(check bool) "reported truncated" false result.Mapper.optimal;
  (* Placement must still be a valid injective assignment. *)
  let sorted = List.sort_uniq compare (Array.to_list result.Mapper.placement) in
  Alcotest.(check int) "injective" 5 (List.length sorted)

(* ---------- Router ---------- *)

let line4_reliability () =
  let topo = Topology.line 4 in
  let cal =
    Calibration.explicit ~day:0 ~one_q:(Array.make 4 0.001)
      ~two_q:[ ((0, 1), 0.05); ((1, 2), 0.05); ((2, 3), 0.05) ]
      ~readout:(Array.make 4 0.01)
  in
  (topo, Reliability.of_calibration ~noise_aware:true topo cal)

let test_router_adjacent_passthrough () =
  let topo, r = line4_reliability () in
  let c = circuit 4 [ G.Two (G.Cnot, 0, 1) ] in
  let routed = Router.route r topo ~placement:[| 0; 1; 2; 3 |] c in
  Alcotest.(check int) "no swaps" 0 routed.Router.swap_count;
  Alcotest.(check int) "one gate" 1 (Circuit.gate_count routed.Router.circuit)

let test_router_inserts_swaps () =
  let topo, r = line4_reliability () in
  let c = circuit 4 [ G.Two (G.Cnot, 0, 3) ] in
  let routed = Router.route r topo ~placement:[| 0; 1; 2; 3 |] c in
  Alcotest.(check int) "two swaps for distance 3" 2 routed.Router.swap_count;
  (* Final CNOT must be on a coupled pair. *)
  List.iter
    (fun g ->
      match (g : G.t) with
      | Two (Cnot, a, b) ->
        Alcotest.(check bool) "coupled" true (Topology.coupled topo a b)
      | _ -> ())
    routed.Router.circuit.Circuit.gates

let test_router_updates_mapping () =
  let topo, r = line4_reliability () in
  let c = circuit 4 [ G.Two (G.Cnot, 0, 3); G.Measure 0; G.Measure 3 ] in
  let routed = Router.route r topo ~placement:[| 0; 1; 2; 3 |] c in
  (* Program qubit 0 moved toward 3; the measure must follow it. *)
  let final = routed.Router.final_placement in
  Alcotest.(check bool) "q0 moved" true (final.(0) <> 0);
  let measures =
    List.filter_map
      (function G.Measure q -> Some q | _ -> None)
      routed.Router.circuit.Circuit.gates
  in
  Alcotest.(check (list int)) "measures track movement" [ final.(0); final.(3) ] measures

let test_router_semantics_preserved () =
  (* Routed circuit (with swaps expanded) must equal the original circuit
     composed with the final permutation. *)
  let topo, r = line4_reliability () in
  let program =
    circuit 4
      [
        G.One (G.H, 0); G.Two (G.Cnot, 0, 3); G.One (G.X, 2); G.Two (G.Cnot, 1, 2);
        G.Two (G.Cnot, 3, 1);
      ]
  in
  let routed = Router.route r topo ~placement:[| 0; 1; 2; 3 |] program in
  let expanded = Translate.expand_swaps routed.Router.circuit in
  (* Build the permutation circuit: program qubit p sits on hardware qubit
     final.(p); compare U_routed against P . U_program where P moves wire p
     to wire final.(p) via swap network. We instead check column-by-column
     action on basis states. *)
  let u_prog = Mat.circuit_unitary program in
  let u_routed = Mat.circuit_unitary expanded in
  let n = 4 in
  let dim = 1 lsl n in
  let final = routed.Router.final_placement in
  (* The routed unitary reads program qubit p on its initial wire (the
     identity placement here) and leaves it on wire final.(p): so
     u_routed[out_idx(row), col] = u_prog[row, col] where out_idx moves
     bit p to position final.(p). *)
  let out_idx idx =
    let bit p = (idx lsr (n - 1 - p)) land 1 in
    let out = ref 0 in
    for p = 0 to n - 1 do
      if bit p = 1 then out := !out lor (1 lsl (n - 1 - final.(p)))
    done;
    !out
  in
  let ok = ref true in
  for col = 0 to dim - 1 do
    for row = 0 to dim - 1 do
      let a = M.get u_prog row col in
      let b = M.get u_routed (out_idx row) col in
      if not (Mathkit.Cplx.approx ~eps:1e-8 a b) then ok := false
    done
  done;
  Alcotest.(check bool) "routing is a permutation conjugation" true !ok

let test_router_rejects_bad_placement () =
  let topo, r = line4_reliability () in
  let c = circuit 2 [ G.Two (G.Cnot, 0, 1) ] in
  Alcotest.(check bool) "duplicate" true
    (try ignore (Router.route r topo ~placement:[| 1; 1 |] c); false
     with Invalid_argument _ -> true)

(* ---------- Direction ---------- *)

let test_direction_fix () =
  let topo = Topology.create 2 [ (0, 1) ] ~directed:true in
  let ok = circuit 2 [ G.Two (G.Cnot, 0, 1) ] in
  let flipped = circuit 2 [ G.Two (G.Cnot, 1, 0) ] in
  Alcotest.(check int) "aligned untouched" 1
    (Circuit.gate_count (Direction.fix topo ok));
  let fixed = Direction.fix topo flipped in
  Alcotest.(check int) "flip adds 4 H" 5 (Circuit.gate_count fixed);
  Alcotest.(check int) "one flip counted" 1 (Direction.flipped_count topo flipped);
  proportional_circuits "flip preserves unitary" flipped fixed

let test_direction_undirected_noop () =
  let topo = Topology.line 2 in
  let c = circuit 2 [ G.Two (G.Cnot, 1, 0) ] in
  Alcotest.(check int) "untouched" 1 (Circuit.gate_count (Direction.fix topo c))

(* ---------- Translate ---------- *)

let test_translate_cnot_ibm () =
  proportional_circuits "ibm cnot is cnot"
    (circuit 2 [ G.Two (G.Cnot, 0, 1) ])
    (circuit 2 (Translate.cnot Gateset.Ibm_visible 0 1))

let test_translate_cnot_rigetti () =
  proportional_circuits "rigetti cnot via cz"
    (circuit 2 [ G.Two (G.Cnot, 0, 1) ])
    (circuit 2 (Translate.cnot Gateset.Rigetti_visible 0 1))

let test_translate_cnot_umd () =
  proportional_circuits "umd cnot via xx"
    (circuit 2 [ G.Two (G.Cnot, 0, 1) ])
    (circuit 2 (Translate.cnot Gateset.Umd_visible 0 1))

let test_translate_expand_swaps () =
  let c = circuit 3 [ G.Two (G.Swap, 0, 2); G.One (G.H, 1) ] in
  let e = Translate.expand_swaps c in
  Alcotest.(check int) "3 cnots + h" 4 (Circuit.gate_count e);
  proportional_circuits "swap expansion equivalent" c e

let all_bases = [ Gateset.Ibm_visible; Gateset.Rigetti_visible; Gateset.Umd_visible ]

let test_translate_emit_rotation_equivalence () =
  let rng = Rng.create 99 in
  List.iter
    (fun basis ->
      for _ = 1 to 100 do
        let q =
          Q.of_axis_angle
            (Rng.gaussian rng, Rng.gaussian rng, Rng.gaussian rng)
            (Rng.float rng *. 2.0 *. Float.pi)
        in
        let gates = Translate.emit_rotation basis 0 q in
        let emitted = circuit 1 gates in
        let reference = Q.to_matrix q in
        if not (M.proportional ~eps:1e-7 reference (Mat.circuit_unitary emitted)) then
          Alcotest.failf "emit_rotation wrong for %s in %s"
            (Format.asprintf "%a" Q.pp q) (Gateset.basis_name basis)
      done)
    all_bases

let test_translate_emit_rotation_visible () =
  let rng = Rng.create 17 in
  List.iter
    (fun basis ->
      for _ = 1 to 50 do
        let q =
          Q.of_axis_angle
            (Rng.gaussian rng, Rng.gaussian rng, Rng.gaussian rng)
            (Rng.float rng *. 2.0 *. Float.pi)
        in
        List.iter
          (fun g ->
            if not (Gateset.gate_visible basis g) then
              Alcotest.failf "emitted non-visible gate %s for %s" (G.to_string g)
                (Gateset.basis_name basis))
          (Translate.emit_rotation basis 0 q)
      done)
    all_bases

let test_translate_emit_identity_empty () =
  List.iter
    (fun basis ->
      Alcotest.(check int) "identity emits nothing" 0
        (List.length (Translate.emit_rotation basis 0 Q.identity)))
    all_bases

let test_translate_pulse_budget () =
  (* Any rotation costs at most 2 pulses on IBM/Rigetti and at most 1 on
     UMD (the paper's point about powerful native 1Q gates). *)
  let rng = Rng.create 23 in
  let max_pulses basis =
    let worst = ref 0 in
    for _ = 1 to 200 do
      let q =
        Q.of_axis_angle
          (Rng.gaussian rng, Rng.gaussian rng, Rng.gaussian rng)
          (Rng.float rng *. 2.0 *. Float.pi)
      in
      let c = circuit 1 (Translate.emit_rotation basis 0 q) in
      worst := max !worst (Gateset.circuit_pulse_count basis c)
    done;
    !worst
  in
  Alcotest.(check int) "ibm <= 2" 2 (max_pulses Gateset.Ibm_visible);
  Alcotest.(check int) "rigetti <= 2" 2 (max_pulses Gateset.Rigetti_visible);
  Alcotest.(check int) "umd <= 1" 1 (max_pulses Gateset.Umd_visible)

(* ---------- Oneq_opt ---------- *)

let test_oneq_merge_cancels () =
  (* H . H = identity: the optimizer must delete both. *)
  let c = circuit 1 [ G.One (G.H, 0); G.One (G.H, 0) ] in
  let o = Oneq_opt.optimize Gateset.Ibm_visible c in
  Alcotest.(check int) "all gone" 0 (Circuit.gate_count o)

let test_oneq_merge_to_z () =
  (* S . S = Z: pure virtual-Z, zero pulses. *)
  let c = circuit 1 [ G.One (G.S, 0); G.One (G.S, 0) ] in
  let o = Oneq_opt.optimize Gateset.Ibm_visible c in
  Alcotest.(check int) "0 pulses" 0 (Gateset.circuit_pulse_count Gateset.Ibm_visible o)

let test_oneq_optimize_equivalence () =
  let rng = Rng.create 5 in
  let kinds = [| G.H; G.X; G.Y; G.S; G.T; G.Rx 0.3; G.Rz 0.9; G.Ry 1.7 |] in
  List.iter
    (fun basis ->
      for _ = 1 to 30 do
        let len = 1 + Rng.int rng 8 in
        let gates = List.init len (fun _ -> G.One (kinds.(Rng.int rng 8), 0)) in
        let c = circuit 1 gates in
        let o = Oneq_opt.optimize basis c in
        if
          not
            (M.proportional ~eps:1e-7 (Mat.circuit_unitary c) (Mat.circuit_unitary o))
        then Alcotest.fail "optimize changed the unitary"
      done)
    all_bases

let test_oneq_optimize_never_worse () =
  let rng = Rng.create 6 in
  List.iter
    (fun basis ->
      for _ = 1 to 30 do
        let len = 1 + Rng.int rng 10 in
        let kinds = [| G.H; G.X; G.S; G.T; G.Rx 0.3 |] in
        let gates = List.init len (fun _ -> G.One (kinds.(Rng.int rng 5), 0)) in
        let c = circuit 1 gates in
        let naive = Oneq_opt.naive basis c in
        let opt = Oneq_opt.optimize basis c in
        let p_naive = Gateset.circuit_pulse_count basis naive in
        let p_opt = Gateset.circuit_pulse_count basis opt in
        if p_opt > p_naive then
          Alcotest.failf "optimization increased pulses (%d > %d)" p_opt p_naive
      done)
    all_bases

let test_oneq_z_before_measure_dropped () =
  let c = circuit 1 [ G.One (G.S, 0); G.Measure 0 ] in
  let o = Oneq_opt.optimize Gateset.Ibm_visible c in
  Alcotest.(check int) "only the measure left" 1 (Circuit.gate_count o)

let test_oneq_flush_before_two_q () =
  let c =
    circuit 2 [ G.One (G.H, 0); G.One (G.H, 0); G.Two (G.Cnot, 0, 1); G.One (G.H, 0) ]
  in
  let o = Oneq_opt.optimize Gateset.Ibm_visible c in
  (* H.H cancels before the CNOT; the trailing H must survive as U2. *)
  Alcotest.(check int) "cnot + one u2" 2 (Circuit.gate_count o)

let test_oneq_naive_per_gate () =
  let c = circuit 1 [ G.One (G.H, 0); G.One (G.H, 0) ] in
  let o = Oneq_opt.naive Gateset.Ibm_visible c in
  (* Naive translation does not cancel. *)
  Alcotest.(check int) "two gates stay" 2 (Circuit.gate_count o)

(* ---------- Pipeline ---------- *)

let bv4 =
  circuit 4
    [
      G.One (G.X, 3); G.One (G.H, 0); G.One (G.H, 1); G.One (G.H, 2); G.One (G.H, 3);
      G.Two (G.Cnot, 0, 3); G.Two (G.Cnot, 1, 3); G.Two (G.Cnot, 2, 3);
      G.One (G.H, 0); G.One (G.H, 1); G.One (G.H, 2);
      G.Measure 0; G.Measure 1; G.Measure 2;
    ]

let test_pipeline_all_levels_visible () =
  List.iter
    (fun machine ->
      List.iter
        (fun level ->
          let r = Pipeline.compile_level machine bv4 ~level in
          if not (Gateset.circuit_visible machine.Device.Machine.basis r.Pipeline.hardware)
          then
            Alcotest.failf "non-visible output on %s at %s"
              machine.Device.Machine.name (Pipeline.level_name level))
        Pipeline.all_levels)
    [ Machines.ibmq5; Machines.ibmq14; Machines.agave; Machines.umdti ]

let test_pipeline_two_q_on_coupled_pairs () =
  List.iter
    (fun machine ->
      let r = Pipeline.compile_level machine bv4 ~level:Pipeline.OneQOptCN in
      List.iter
        (fun g ->
          match (g : G.t) with
          | Two (_, a, b) ->
            if not (Topology.coupled machine.Device.Machine.topology a b) then
              Alcotest.failf "2q gate on uncoupled pair %d,%d (%s)" a b
                machine.Device.Machine.name
          | _ -> ())
        r.Pipeline.hardware.Circuit.gates)
    [ Machines.ibmq5; Machines.ibmq14; Machines.ibmq16; Machines.agave ]

let test_pipeline_cnot_direction_respected () =
  let machine = Machines.ibmq5 in
  let r = Pipeline.compile_level machine bv4 ~level:Pipeline.OneQOptCN in
  List.iter
    (fun g ->
      match (g : G.t) with
      | Two (Cnot, a, b) ->
        if not (Topology.has_directed_edge machine.Device.Machine.topology a b) then
          Alcotest.failf "CNOT %d->%d against hardware direction" a b
      | _ -> ())
    r.Pipeline.hardware.Circuit.gates

let test_pipeline_umd_needs_no_swaps () =
  let r = Pipeline.compile_level Machines.umdti bv4 ~level:Pipeline.OneQOptCN in
  Alcotest.(check int) "fully connected: zero swaps" 0 r.Pipeline.swap_count

let test_pipeline_opt_levels_reduce_pulses () =
  let machine = Machines.ibmq14 in
  let n = Pipeline.compile_level machine bv4 ~level:Pipeline.N in
  let o = Pipeline.compile_level machine bv4 ~level:Pipeline.OneQOpt in
  Alcotest.(check bool)
    (Printf.sprintf "pulses %d -> %d" n.Pipeline.pulse_count o.Pipeline.pulse_count)
    true
    (o.Pipeline.pulse_count <= n.Pipeline.pulse_count)

let test_pipeline_comm_opt_reduces_two_q () =
  let machine = Machines.ibmq14 in
  let o = Pipeline.compile_level machine bv4 ~level:Pipeline.OneQOpt in
  let c = Pipeline.compile_level machine bv4 ~level:Pipeline.OneQOptC in
  Alcotest.(check bool)
    (Printf.sprintf "2q %d -> %d" o.Pipeline.two_q_count c.Pipeline.two_q_count)
    true
    (c.Pipeline.two_q_count <= o.Pipeline.two_q_count)

let test_pipeline_esp_in_range () =
  List.iter
    (fun machine ->
      let r = Pipeline.compile_level machine bv4 ~level:Pipeline.OneQOptCN in
      if r.Pipeline.esp <= 0.0 || r.Pipeline.esp > 1.0 then
        Alcotest.failf "esp out of range: %f" r.Pipeline.esp)
    Machines.all

let test_pipeline_readout_map () =
  let r = Pipeline.compile_level Machines.ibmq5 bv4 ~level:Pipeline.OneQOptCN in
  Alcotest.(check int) "three readouts" 3 (List.length r.Pipeline.readout_map);
  List.iter
    (fun (p, h) ->
      Alcotest.(check int) "follows final placement" r.Pipeline.final_placement.(p) h)
    r.Pipeline.readout_map

let test_pipeline_rejects_oversize () =
  let big = circuit 6 [ G.One (G.H, 5) ] in
  Alcotest.(check bool) "6q on 5q machine" true
    (try ignore (Pipeline.compile_level Machines.ibmq5 big ~level:Pipeline.N); false
     with Invalid_argument _ -> true)

let test_pipeline_level_names () =
  Alcotest.(check string) "cn name" "TriQ-1QOptCN" (Pipeline.level_name Pipeline.OneQOptCN);
  List.iter
    (fun l ->
      match Pipeline.level_of_string (Pipeline.level_name l) with
      | Some l' when l = l' -> ()
      | _ -> Alcotest.fail "level name roundtrip")
    Pipeline.all_levels;
  (* Parsing is case-insensitive in both the short and display forms. *)
  Alcotest.(check bool) "uppercase short" true
    (Pipeline.level_of_string "1QOPTCN" = Some Pipeline.OneQOptCN);
  Alcotest.(check bool) "uppercase display" true
    (Pipeline.level_of_string "TRIQ-1QOPTC" = Some Pipeline.OneQOptC);
  Alcotest.(check bool) "mixed case" true
    (Pipeline.level_of_string "TriQ-n" = Some Pipeline.N);
  List.iter
    (fun s ->
      if Pipeline.level_of_string s = None then
        Alcotest.failf "level_strings entry %S does not parse" s)
    Pipeline.level_strings;
  Alcotest.(check bool) "unknown" true (Pipeline.level_of_string "bogus" = None)

(* Semantic end-to-end check: compiled BV4 on a noiseless simulator of the
   hardware circuit must produce the program's ideal output. Done via
   unitary comparison on the hardware circuit restricted to used qubits. *)
let test_pipeline_semantics_small () =
  let machine = Machines.agave in
  let r = Pipeline.compile_level machine bv4 ~level:Pipeline.OneQOptCN in
  let hw, mapping = Circuit.compact (Circuit.body r.Pipeline.hardware) in
  (* Build expected: program body mapped through placement and compaction. *)
  let place p = List.assoc r.Pipeline.final_placement.(p) mapping in
  ignore place;
  (* Just sanity-check the compacted hardware circuit is still unitary and
     small; full distribution-level checks live in the simulator tests. *)
  Alcotest.(check bool) "compact <= 4 qubits" true (hw.Circuit.n_qubits <= 4)

let test_pipeline_pass_timings () =
  let r = Pipeline.compile_level Machines.ibmq14 bv4 ~level:Pipeline.OneQOptCN in
  let names = List.map fst r.Pipeline.pass_times_s in
  Alcotest.(check (list string)) "pass order"
    [
      "flatten"; "reliability"; "mapping"; "routing"; "swap-expansion";
      "orientation"; "translation"; "oneq"; "readout";
    ]
    names;
  List.iter
    (fun (name, t) -> if t < 0.0 then Alcotest.failf "%s: negative time" name)
    r.Pipeline.pass_times_s;
  let total = List.fold_left (fun acc (_, t) -> acc +. t) 0.0 r.Pipeline.pass_times_s in
  Alcotest.(check bool) "passes within total" true
    (total <= r.Pipeline.compile_time_s +. 1e-6)

(* ---------- Error budget ---------- *)

let test_error_budget_multiplies_to_esp () =
  List.iter
    (fun machine ->
      let r = Pipeline.compile_level machine bv4 ~level:Pipeline.OneQOptCN in
      let budget = Triq.Compiled.budget_of (Pipeline.to_compiled r) in
      let product =
        budget.Triq.Compiled.two_q *. budget.Triq.Compiled.one_q
        *. budget.Triq.Compiled.readout
      in
      Alcotest.(check (float 1e-9)) (machine.Device.Machine.name ^ " product = esp")
        r.Pipeline.esp product)
    [ Machines.ibmq5; Machines.agave; Machines.umdti ]

let test_error_budget_two_q_dominates () =
  (* On superconducting machines, 2Q gates are the dominant loss for BV4
     (the paper's "2Q and RO operations dominate error rates"). *)
  let r = Pipeline.compile_level Machines.ibmq14 bv4 ~level:Pipeline.OneQOptCN in
  let b = Triq.Compiled.budget_of (Pipeline.to_compiled r) in
  Alcotest.(check bool) "2q loss largest" true
    (b.Triq.Compiled.two_q < b.Triq.Compiled.one_q);
  Alcotest.(check bool) "2q below readout" true
    (b.Triq.Compiled.two_q <= b.Triq.Compiled.readout +. 1e-9)

(* ---------- qcheck properties ---------- *)

let random_calibration_gen =
  QCheck.Gen.(
    let n = 6 in
    let topo = Topology.ring n in
    map
      (fun errs ->
        let edges = Topology.edges topo in
        let two_q = List.map2 (fun e err -> (e, err)) edges errs in
        ( topo,
          Calibration.explicit ~day:0 ~one_q:(Array.make n 0.001) ~two_q
            ~readout:(Array.make n 0.02) ))
      (list_repeat (List.length (Topology.edges (Topology.ring n)))
         (float_range 0.01 0.3)))

let prop_reliability_score_bounds =
  QCheck.Test.make ~count:100 ~name:"reliability scores lie in (0, 1]"
    (QCheck.make random_calibration_gen) (fun (topo, cal) ->
      let r = Triq.Reliability.of_calibration ~noise_aware:true topo cal in
      let n = Triq.Reliability.n_qubits r in
      let ok = ref true in
      for a = 0 to n - 1 do
        for b = 0 to n - 1 do
          if a <> b then begin
            let s = Triq.Reliability.score r a b in
            if s <= 0.0 || s > 1.0 then ok := false
          end
        done
      done;
      !ok)

let prop_reliability_direct_at_least_routed =
  QCheck.Test.make ~count:100
    ~name:"coupled pairs score at least their direct edge"
    (QCheck.make random_calibration_gen) (fun (topo, cal) ->
      let r = Triq.Reliability.of_calibration ~noise_aware:true topo cal in
      List.for_all
        (fun (a, b) ->
          Triq.Reliability.score r a b >= Triq.Reliability.edge_reliability r a b -. 1e-12)
        (Topology.edges topo))

let prop_reliability_swap_path_valid =
  QCheck.Test.make ~count:100 ~name:"swap paths walk couplings"
    (QCheck.make random_calibration_gen) (fun (topo, cal) ->
      let r = Triq.Reliability.of_calibration ~noise_aware:true topo cal in
      let n = Triq.Reliability.n_qubits r in
      let ok = ref true in
      for a = 0 to n - 1 do
        for b = 0 to n - 1 do
          if a <> b then begin
            let path = Triq.Reliability.swap_path r a b in
            let rec edges_ok = function
              | u :: (v :: _ as rest) ->
                Topology.coupled topo u v && edges_ok rest
              | [ _ ] | [] -> true
            in
            if not (edges_ok path) then ok := false;
            (* The path ends at a neighbour of the target (or at the
               control when already coupled). *)
            let last = List.nth path (List.length path - 1) in
            if not (Topology.coupled topo last b) then ok := false
          end
        done
      done;
      !ok)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_reliability_score_bounds;
      prop_reliability_direct_at_least_routed;
      prop_reliability_swap_path_valid;
    ]

let () =
  Alcotest.run "triq"
    [
      ( "reliability",
        [
          Alcotest.test_case "fig6 direct edges" `Quick test_fig6_direct_edges;
          Alcotest.test_case "fig6 swap entries" `Quick test_fig6_swap_entries;
          Alcotest.test_case "fig6 swap path" `Quick test_fig6_swap_path;
          Alcotest.test_case "noise-unaware = hops" `Quick
            test_reliability_noise_unaware_is_hops;
          Alcotest.test_case "readout" `Quick test_reliability_readout;
          Alcotest.test_case "fully connected" `Quick test_reliability_fully_connected;
        ] );
      ( "mapper",
        [
          Alcotest.test_case "interactions" `Quick test_mapper_interactions;
          Alcotest.test_case "trivial" `Quick test_mapper_trivial;
          Alcotest.test_case "prefers good edge" `Quick test_mapper_prefers_good_edge;
          Alcotest.test_case "avoids bad readout" `Quick test_mapper_avoids_bad_readout;
          Alcotest.test_case "objective consistent" `Quick
            test_mapper_objective_matches_evaluate;
          Alcotest.test_case "budget truncation" `Quick test_mapper_budget_truncation;
        ] );
      ( "router",
        [
          Alcotest.test_case "adjacent passthrough" `Quick test_router_adjacent_passthrough;
          Alcotest.test_case "inserts swaps" `Quick test_router_inserts_swaps;
          Alcotest.test_case "updates mapping" `Quick test_router_updates_mapping;
          Alcotest.test_case "semantics preserved" `Quick test_router_semantics_preserved;
          Alcotest.test_case "rejects bad placement" `Quick test_router_rejects_bad_placement;
        ] );
      ( "direction",
        [
          Alcotest.test_case "fix" `Quick test_direction_fix;
          Alcotest.test_case "undirected noop" `Quick test_direction_undirected_noop;
        ] );
      ( "translate",
        [
          Alcotest.test_case "ibm cnot" `Quick test_translate_cnot_ibm;
          Alcotest.test_case "rigetti cnot" `Quick test_translate_cnot_rigetti;
          Alcotest.test_case "umd cnot" `Quick test_translate_cnot_umd;
          Alcotest.test_case "swap expansion" `Quick test_translate_expand_swaps;
          Alcotest.test_case "rotation equivalence" `Quick
            test_translate_emit_rotation_equivalence;
          Alcotest.test_case "rotation visibility" `Quick
            test_translate_emit_rotation_visible;
          Alcotest.test_case "identity empty" `Quick test_translate_emit_identity_empty;
          Alcotest.test_case "pulse budget" `Quick test_translate_pulse_budget;
        ] );
      ( "oneq_opt",
        [
          Alcotest.test_case "cancellation" `Quick test_oneq_merge_cancels;
          Alcotest.test_case "merge to virtual z" `Quick test_oneq_merge_to_z;
          Alcotest.test_case "equivalence" `Quick test_oneq_optimize_equivalence;
          Alcotest.test_case "never worse" `Quick test_oneq_optimize_never_worse;
          Alcotest.test_case "z before measure" `Quick test_oneq_z_before_measure_dropped;
          Alcotest.test_case "flush at 2q" `Quick test_oneq_flush_before_two_q;
          Alcotest.test_case "naive per gate" `Quick test_oneq_naive_per_gate;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "visible output" `Quick test_pipeline_all_levels_visible;
          Alcotest.test_case "2q on coupled pairs" `Quick
            test_pipeline_two_q_on_coupled_pairs;
          Alcotest.test_case "cnot direction" `Quick test_pipeline_cnot_direction_respected;
          Alcotest.test_case "umd no swaps" `Quick test_pipeline_umd_needs_no_swaps;
          Alcotest.test_case "1q opt reduces pulses" `Quick
            test_pipeline_opt_levels_reduce_pulses;
          Alcotest.test_case "comm opt reduces 2q" `Quick
            test_pipeline_comm_opt_reduces_two_q;
          Alcotest.test_case "esp range" `Quick test_pipeline_esp_in_range;
          Alcotest.test_case "readout map" `Quick test_pipeline_readout_map;
          Alcotest.test_case "oversize rejected" `Quick test_pipeline_rejects_oversize;
          Alcotest.test_case "level names" `Quick test_pipeline_level_names;
          Alcotest.test_case "semantics smoke" `Quick test_pipeline_semantics_small;
          Alcotest.test_case "pass timings" `Quick test_pipeline_pass_timings;
        ] );
      ( "error budget",
        [
          Alcotest.test_case "multiplies to esp" `Quick test_error_budget_multiplies_to_esp;
          Alcotest.test_case "2q dominates" `Quick test_error_budget_two_q_dominates;
        ] );
      ("properties", qcheck_cases);
    ]
